package campaign

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"radcrit/internal/arch"
	"radcrit/internal/k40"
	"radcrit/internal/kernels"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/kernels/lavamd"
	"radcrit/internal/metrics"
	"radcrit/internal/phi"
)

// sameBits compares floats by bit pattern: corrupted reads can legally be
// NaN (exponent-field flips), and NaN != NaN under both == and DeepEqual
// even though the two runs produced the identical bit pattern.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func sameReport(a, b *metrics.Report) bool {
	if a.Dims != b.Dims || a.TotalElements != b.TotalElements ||
		!sameBits(a.ThresholdPct, b.ThresholdPct) || len(a.Mismatches) != len(b.Mismatches) {
		return false
	}
	for i := range a.Mismatches {
		ma, mb := a.Mismatches[i], b.Mismatches[i]
		if ma.Coord != mb.Coord || !sameBits(ma.Read, mb.Read) ||
			!sameBits(ma.Expected, mb.Expected) || !sameBits(ma.RelErrPct, mb.RelErrPct) {
			return false
		}
	}
	return true
}

// requireIdentical asserts two engine results are bit-identical, field by
// field for actionable failures.
func requireIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Tally != b.Tally {
		t.Fatalf("%s: tallies differ: %+v vs %+v", label, a.Tally, b.Tally)
	}
	if len(a.Reports) != len(b.Reports) {
		t.Fatalf("%s: report counts differ: %d vs %d", label, len(a.Reports), len(b.Reports))
	}
	for i := range a.Reports {
		if !sameReport(a.Reports[i], b.Reports[i]) {
			t.Fatalf("%s: report %d differs", label, i)
		}
	}
	if !reflect.DeepEqual(a.ReportResource, b.ReportResource) {
		t.Fatalf("%s: report resources differ", label)
	}
	if !reflect.DeepEqual(a.ResourceTally, b.ResourceTally) {
		t.Fatalf("%s: resource tallies differ", label)
	}
	if a.Exposure != b.Exposure {
		t.Fatalf("%s: exposures differ: %+v vs %+v", label, a.Exposure, b.Exposure)
	}
	if a.Device != b.Device || a.Kernel != b.Kernel || a.Input != b.Input ||
		a.Strikes != b.Strikes || a.Profile != b.Profile {
		t.Fatalf("%s: cell identity fields differ", label)
	}
}

// determinismCells covers all four kernels on both devices' architectures:
// the stateless delta-propagated kernels (DGEMM, LavaMD) and the stateful
// snapshot-timeline kernels (HotSpot, CLAMR) exercise every golden-state
// handle implementation.
func determinismCells() []Cell {
	return []Cell{
		{Dev: k40.New(), Kern: dgemm.New(128)},
		{Dev: phi.New(), Kern: lavamd.New(4)},
		{Dev: k40.New(), Kern: HotSpotKernel(TestScale)},
		{Dev: phi.New(), Kern: CLAMRKernel(TestScale)},
	}
}

// TestParallelEngineBitIdentical is the engine's determinism contract:
// one worker and many workers must produce bit-identical Results for the
// same seed, for every kernel family.
func TestParallelEngineBitIdentical(t *testing.T) {
	for _, cell := range determinismCells() {
		serial := DefaultConfig(11, 160)
		serial.Workers = 1
		parallel := serial
		parallel.Workers = 8
		a := runUncached(cell.Dev, cell.Kern, serial)
		b := runUncached(cell.Dev, cell.Kern, parallel)
		requireIdentical(t, cell.Kern.Name(), a, b)
	}
}

// TestParallelEngineGOMAXPROCSInvariant pins the acceptance criterion
// directly: GOMAXPROCS=1 vs GOMAXPROCS=8 with the default worker count.
func TestParallelEngineGOMAXPROCSInvariant(t *testing.T) {
	dev := k40.New()
	kern := dgemm.New(128)
	cfg := DefaultConfig(23, 160) // Workers = 0: sized by GOMAXPROCS

	prev := runtime.GOMAXPROCS(1)
	a := runUncached(dev, kern, cfg)
	runtime.GOMAXPROCS(8)
	b := runUncached(dev, kern, cfg)
	runtime.GOMAXPROCS(prev)

	requireIdentical(t, "GOMAXPROCS 1 vs 8", a, b)
}

// TestParallelEngineRepeatedRunsIdentical guards against order-dependent
// state leaking through the shared golden handles: a second parallel run
// over warm caches must reproduce the first bit for bit.
func TestParallelEngineRepeatedRunsIdentical(t *testing.T) {
	dev := phi.New()
	kern := dgemm.New(128)
	cfg := DefaultConfig(31, 160)
	cfg.Workers = 8
	a := runUncached(dev, kern, cfg)
	b := runUncached(dev, kern, cfg)
	requireIdentical(t, "repeated parallel runs", a, b)
}

// TestRunSingleFlight verifies the memo cache's single-flight behaviour:
// concurrent Run calls on one uncached cell must all return the same
// *Result instance (the racing pre-fix cache could compute a cell twice
// and hand different callers different instances).
func TestRunSingleFlight(t *testing.T) {
	dev := k40.New()
	kern := dgemm.New(192)
	cfg := DefaultConfig(47, 60)
	const callers = 8
	results := make([]*Result, callers)
	done := make(chan int)
	for c := 0; c < callers; c++ {
		go func(c int) {
			results[c] = Run(dev, kern, cfg)
			done <- c
		}(c)
	}
	for i := 0; i < callers; i++ {
		<-done
	}
	for c := 1; c < callers; c++ {
		if results[c] != results[0] {
			t.Fatalf("caller %d got a different *Result: single-flight broken", c)
		}
	}
}

// TestRunMatrixOrderAndDedup checks that RunMatrix preserves cell order
// and that duplicate cells resolve to the same memoised result.
func TestRunMatrixOrderAndDedup(t *testing.T) {
	cells := []Cell{
		{Dev: k40.New(), Kern: dgemm.New(128)},
		{Dev: phi.New(), Kern: dgemm.New(128)},
		{Dev: k40.New(), Kern: dgemm.New(128)}, // duplicate of cell 0
	}
	cfg := DefaultConfig(53, 60)
	results := RunMatrix(cells, cfg)
	if len(results) != len(cells) {
		t.Fatalf("got %d results for %d cells", len(results), len(cells))
	}
	for i, res := range results {
		if res.Device != cells[i].Dev.ShortName() || res.Input != cells[i].Kern.InputLabel() {
			t.Fatalf("result %d out of order: %s/%s", i, res.Device, res.Input)
		}
	}
	if results[0] != results[2] {
		t.Fatal("duplicate cells should share one memoised result")
	}
	if results[0] == results[1] {
		t.Fatal("distinct devices must not share a result")
	}
}

// TestWorkersExcludedFromMemoKey pins the Config.Workers contract: the
// worker count must not fragment the memo cache, because it cannot change
// results.
func TestWorkersExcludedFromMemoKey(t *testing.T) {
	dev := phi.New()
	kern := dgemm.New(192)
	a := DefaultConfig(59, 60)
	a.Workers = 1
	b := DefaultConfig(59, 60)
	b.Workers = 8
	if Run(dev, kern, a) != Run(dev, kern, b) {
		t.Fatal("Workers fragmented the memo cache")
	}
}

// TestSessionlessBuildersDeterministicUnderWorkers checks the ported
// strike-loop builders (mass check, Fig. 9 map) produce identical outputs
// for any worker count.
func TestSessionlessBuildersDeterministicUnderWorkers(t *testing.T) {
	dev := phi.New()
	serial := DefaultConfig(67, 120)
	serial.Workers = 1
	parallel := serial
	parallel.Workers = 8

	mcA := BuildMassCheckCoverage(dev, TestScale, serial, 2)
	mcB := BuildMassCheckCoverage(dev, TestScale, parallel, 2)
	if mcA != mcB {
		t.Fatalf("mass-check coverage depends on workers: %+v vs %+v", mcA, mcB)
	}

	mapA := BuildCLAMRLocalityMap(dev, TestScale, serial)
	mapB := BuildCLAMRLocalityMap(dev, TestScale, parallel)
	if !reflect.DeepEqual(mapA, mapB) {
		t.Fatal("locality map depends on workers")
	}
}

// invalidKernel wraps a real kernel with a degenerate profile, to drive
// the engine's failure path.
type invalidKernel struct{ kernels.Kernel }

func (invalidKernel) Profile(dev arch.Device) arch.Profile { return arch.Profile{} }

// TestRunPoisonedEntryPanicsAgain pins the memo's failure semantics: a
// cell whose first computation panicked (invalid profile) must keep
// failing loudly on retry instead of returning a nil *Result out of the
// poisoned single-flight entry.
func TestRunPoisonedEntryPanicsAgain(t *testing.T) {
	dev := k40.New()
	kern := invalidKernel{dgemm.New(128)}
	cfg := DefaultConfig(83, 10)
	mustPanic := func(label string) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", label)
			}
		}()
		Run(dev, kern, cfg)
	}
	mustPanic("first run (invalid profile)")
	mustPanic("retry on poisoned entry")
}

// TestRunFreshWorkerInvariant cross-checks RunFresh (the uncached engine
// entry benchmarks use) across worker counts for every kernel family.
func TestRunFreshWorkerInvariant(t *testing.T) {
	for _, cell := range determinismCells() {
		cfgA := DefaultConfig(71, 80)
		cfgA.Workers = 1
		cfgB := cfgA
		cfgB.Workers = 4
		a := RunFresh(cell.Dev, cell.Kern, cfgA)
		b := RunFresh(cell.Dev, cell.Kern, cfgB)
		requireIdentical(t, cell.Kern.Name()+" fresh", a, b)
	}
}
