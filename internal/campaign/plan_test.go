package campaign

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func validPlan() *Plan {
	return NewPlan(42, 300).
		Named("test").
		WithKernelOnDevices("dgemm:128", "k40", "phi").
		WithThresholds(0, 2).
		WithWorkers(2).
		WithStreamChunk(64)
}

func TestPlanBuilderAndValidate(t *testing.T) {
	p := validPlan()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if len(p.Cells) != 2 || p.Cells[1] != (CellSpec{Device: "phi", Kernel: "dgemm:128"}) {
		t.Fatalf("builder assembled %+v", p.Cells)
	}
	cfg := p.Config()
	if cfg.Seed != 42 || cfg.Strikes != 300 || cfg.Workers != 2 ||
		cfg.StreamChunk != 64 || cfg.BaseExecSeconds != 1.0 || cfg.Facility.Name != "LANSCE" {
		t.Fatalf("Config() = %+v", cfg)
	}
}

// TestPlanValidateRejections is the rejection table of the plan surface:
// every malformed plan that used to panic somewhere inside a run must
// come back as an error naming the problem.
func TestPlanValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(p *Plan)
		want   string // substring of the error
	}{
		{"zero strikes", func(p *Plan) { p.Strikes = 0 }, "strikes"},
		{"negative strikes", func(p *Plan) { p.Strikes = -5 }, "strikes"},
		{"no cells", func(p *Plan) { p.Cells = nil }, "no cells"},
		{"unknown device", func(p *Plan) { p.Cells[0].Device = "gtx" }, "unknown device"},
		{"unknown kernel", func(p *Plan) { p.Cells[0].Kernel = "sgemm:128" }, "unknown kernel"},
		{"non-tile dgemm", func(p *Plan) { p.Cells[0].Kernel = "dgemm:100" }, "multiple"},
		{"dgemm without size", func(p *Plan) { p.Cells[0].Kernel = "dgemm" }, "missing"},
		{"garbage dgemm size", func(p *Plan) { p.Cells[0].Kernel = "dgemm:huge" }, "not an integer"},
		{"lavamd too small", func(p *Plan) { p.Cells[0].Kernel = "lavamd:1" }, "too small"},
		{"malformed hotspot", func(p *Plan) { p.Cells[0].Kernel = "hotspot:64" }, "SIDExITERS"},
		{"tiny clamr", func(p *Plan) { p.Cells[0].Kernel = "clamr:8x2" }, "invalid config"},
		{"negative workers", func(p *Plan) { p.Workers = -1 }, "workers"},
		{"negative stream chunk", func(p *Plan) { p.StreamChunk = -1 }, "stream_chunk"},
		{"unknown facility", func(p *Plan) { p.Facility = "CERN" }, "facility"},
		{"NaN threshold", func(p *Plan) { p.Thresholds = []float64{math.NaN()} }, "threshold"},
		{"negative exec seconds", func(p *Plan) { p.BaseExecSeconds = -1 }, "base_exec_seconds"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := validPlan()
			c.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("Validate accepted plan with %s", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
			// The facade contract: the same plan must be rejected by
			// every Runner entry point, never panic inside one.
			if _, berr := p.Build(); berr == nil {
				t.Errorf("Build accepted plan with %s", c.name)
			}
		})
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := validPlan().WithFacility("ISIS").WithBaseExecSeconds(2.5)
	var buf bytes.Buffer
	if err := SavePlan(&buf, p); err != nil {
		t.Fatalf("SavePlan: %v", err)
	}
	p2, err := LoadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadPlan: %v", err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("round trip drifted:\n  saved  %+v\n  loaded %+v", p, p2)
	}
}

func TestLoadPlanRejects(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"not json", "strikes: 300"},
		{"unknown field", `{"seed":1,"strikes":10,"strike_budget":9,"cells":[{"device":"k40","kernel":"dgemm:128"}]}`},
		{"trailing garbage", `{"seed":1,"strikes":10,"cells":[{"device":"k40","kernel":"dgemm:128"}]} extra`},
		{"invalid plan", `{"seed":1,"strikes":0,"cells":[{"device":"k40","kernel":"dgemm:128"}]}`},
		{"bad cell", `{"seed":1,"strikes":10,"cells":[{"device":"k40","kernel":"dgemm:7"}]}`},
	}
	for _, c := range cases {
		if _, err := LoadPlan(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: LoadPlan accepted %q", c.name, c.in)
		}
	}
}

// FuzzLoadPlan asserts that no byte stream can panic the plan loader and
// that every accepted plan survives a save/load round trip unchanged.
func FuzzLoadPlan(f *testing.F) {
	f.Add([]byte(`{"seed":42,"strikes":300,"cells":[{"device":"k40","kernel":"dgemm:128"}]}`))
	f.Add([]byte(`{"name":"x","seed":1,"strikes":10,"cells":[{"device":"phi","kernel":"clamr:48x60"}],"thresholds":[0,2.5],"workers":3,"stream_chunk":128,"base_exec_seconds":0.5,"facility":"ISIS"}`))
	f.Add([]byte(`{"seed":-1}`))
	f.Add([]byte(`[{"device":"k40"}]`))
	f.Add([]byte(`{"thresholds":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := LoadPlan(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := SavePlan(&buf, p); err != nil {
			t.Fatalf("accepted plan failed to save: %v", err)
		}
		p2, err := LoadPlan(&buf)
		if err != nil {
			t.Fatalf("saved plan failed to load: %v\n%s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip drifted:\n  in  %+v\n  out %+v", p, p2)
		}
	})
}

func TestEffectiveThresholds(t *testing.T) {
	p := NewPlan(1, 10).WithCell("k40", "dgemm:128")
	if got := p.EffectiveThresholds(); !reflect.DeepEqual(got, []float64{0, 2}) {
		t.Errorf("default thresholds = %v", got)
	}
	p.WithThresholds(5)
	if got := p.EffectiveThresholds(); !reflect.DeepEqual(got, []float64{5}) {
		t.Errorf("explicit thresholds = %v", got)
	}
}
