package campaign

import (
	"math"
	"strings"
	"testing"

	"radcrit/internal/beam"
	"radcrit/internal/fault"
	"radcrit/internal/injector"
	"radcrit/internal/k40"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/logdata"
	"radcrit/internal/phi"
)

func cfg(strikes int) Config { return DefaultConfig(7, strikes) }

func TestRunDeterministicAndCached(t *testing.T) {
	dev := k40.New()
	kern := dgemm.New(128)
	a := Run(dev, kern, cfg(60))
	b := Run(dev, kern, cfg(60))
	if a != b {
		t.Fatal("identical cells should hit the result cache")
	}
	if a.Tally.Count() != 60 {
		t.Fatalf("tally covers %d strikes, want 60", a.Tally.Count())
	}
	if len(a.Reports) != a.Tally.SDC {
		t.Fatal("reports do not match SDC tally")
	}
}

func TestRunProducesAllOutcomeKinds(t *testing.T) {
	res := Run(k40.New(), dgemm.New(128), cfg(300))
	if res.Tally.SDC == 0 || res.Tally.Masked == 0 || res.Tally.Crash+res.Tally.Hang == 0 {
		t.Fatalf("outcome mix degenerate: %+v", res.Tally)
	}
}

func TestSDCFITFilterMonotonic(t *testing.T) {
	res := Run(k40.New(), dgemm.New(128), cfg(300))
	all := res.SDCFIT(0)
	filtered := res.SDCFIT(2)
	if all <= 0 {
		t.Fatal("zero SDC FIT")
	}
	if filtered > all {
		t.Fatal("filtering cannot raise FIT")
	}
	stricter := res.SDCFIT(50)
	if stricter > filtered {
		t.Fatal("stricter filter cannot raise FIT")
	}
}

func TestLocalityBreakdownSumsToSDCFIT(t *testing.T) {
	res := Run(k40.New(), dgemm.New(128), cfg(300))
	bd := res.LocalityBreakdown(0)
	if math.Abs(bd.Total()-res.SDCFIT(0)) > 1e-9*bd.Total() {
		t.Fatalf("breakdown total %v != SDC FIT %v", bd.Total(), res.SDCFIT(0))
	}
	if len(bd.Labels) != 5 {
		t.Fatalf("expected 5 pattern labels, got %v", bd.Labels)
	}
}

func TestScatterMatchesReports(t *testing.T) {
	res := Run(phi.New(), dgemm.New(128), cfg(200))
	pts := res.Scatter(100)
	if len(pts) != len(res.Reports) {
		t.Fatal("one point per SDC expected")
	}
	for _, p := range pts {
		if p.IncorrectElements <= 0 {
			t.Fatal("SDC with no incorrect elements")
		}
		if p.MeanRelErrPct > 100 {
			t.Fatalf("cap not applied: %v", p.MeanRelErrPct)
		}
	}
}

func TestExposureBackComputation(t *testing.T) {
	res := Run(k40.New(), dgemm.New(128), cfg(120))
	if err := res.Exposure.Validate(); err != nil {
		t.Fatal(err)
	}
	// The exposure must sit in the single-strike regime (§IV-D).
	if res.Exposure.StrikeRatePerExec() > 1.0001e-3 {
		t.Fatalf("strike rate %e over the single-strike bound", res.Exposure.StrikeRatePerExec())
	}
	// Expected strikes over the back-computed hours ≈ configured strikes.
	mean := res.Exposure.StrikeRatePerExec() * float64(res.Exposure.Executions())
	if math.Abs(mean-120) > 6 {
		t.Fatalf("expected strikes %v, want ~120", mean)
	}
}

func TestToLogRoundTrip(t *testing.T) {
	res := Run(phi.New(), dgemm.New(128), cfg(150))
	l := res.ToLog(7)
	var sb strings.Builder
	if err := logdata.Write(&sb, l); err != nil {
		t.Fatal(err)
	}
	parsed, err := logdata.Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.SDCCount() != res.Tally.SDC {
		t.Fatalf("log SDC count %d != %d", parsed.SDCCount(), res.Tally.SDC)
	}
	if parsed.CrashHangCount() != res.Tally.Crash+res.Tally.Hang {
		t.Fatal("log DUE count mismatch")
	}
	// Re-derive reports from the log: same mismatch totals.
	reps := parsed.Reports()
	total := 0
	for _, r := range reps {
		total += r.Count()
	}
	want := 0
	for _, r := range res.Reports {
		want += r.Count()
	}
	if total != want {
		t.Fatalf("log mismatches %d != campaign %d", total, want)
	}
}

func TestPresetsScales(t *testing.T) {
	k40Dev := k40.New()
	phiDev := phi.New()
	if len(DGEMMSizes(PaperScale, k40Dev)) != 3 || len(DGEMMSizes(PaperScale, phiDev)) != 4 {
		t.Fatal("paper DGEMM sweep sizes wrong (Fig. 2: 3 on K40, 4 on Phi)")
	}
	if len(LavaMDSizes(PaperScale, k40Dev)) != 3 || len(LavaMDSizes(PaperScale, phiDev)) != 4 {
		t.Fatal("paper LavaMD sweep sizes wrong (Fig. 4)")
	}
	side, _ := HotSpotConfig(PaperScale)
	if side != 1024 {
		t.Fatal("paper HotSpot is 1024x1024 (Table II)")
	}
	side, _ = CLAMRConfig(PaperScale)
	if side != 512 {
		t.Fatal("paper CLAMR is 512x512 (Table II)")
	}
}

func TestKernelCaches(t *testing.T) {
	a := HotSpotKernel(TestScale)
	b := HotSpotKernel(TestScale)
	if a != b {
		t.Fatal("HotSpot kernel not cached")
	}
	c := CLAMRKernel(TestScale)
	d := CLAMRKernel(TestScale)
	if c != d {
		t.Fatal("CLAMR kernel not cached")
	}
}

func TestAllKernels(t *testing.T) {
	ks := AllKernels(TestScale, k40.New())
	if len(ks) != 4 {
		t.Fatalf("expected 4 kernels, got %d", len(ks))
	}
	names := map[string]bool{}
	for _, k := range ks {
		names[k.Name()] = true
	}
	for _, want := range []string{"DGEMM", "LavaMD", "HotSpot", "CLAMR"} {
		if !names[want] {
			t.Fatalf("missing kernel %s", want)
		}
	}
}

func TestBuildMassCheckCoverage(t *testing.T) {
	row := BuildMassCheckCoverage(phi.New(), TestScale, cfg(250), 2)
	if row.CriticalSDCs == 0 {
		t.Fatal("no critical CLAMR SDCs sampled")
	}
	// Paper: 82% coverage. Accept a generous band around it.
	if row.Coverage < 0.45 || row.Coverage > 0.99 {
		t.Fatalf("mass-check coverage %v far from the paper's 82%%", row.Coverage)
	}
}

func TestBuildCLAMRLocalityMap(t *testing.T) {
	m := BuildCLAMRLocalityMap(phi.New(), TestScale, cfg(40))
	if m.Count == 0 {
		t.Fatal("no SDC found for the locality map")
	}
	marked := 0
	for _, row := range m.Marked {
		for _, b := range row {
			if b {
				marked++
			}
		}
	}
	if marked != m.Count {
		t.Fatalf("marked %d != count %d", marked, m.Count)
	}
}

func TestBuildSDCRatiosCoversMatrix(t *testing.T) {
	rows := BuildSDCRatios(TestScale, cfg(80))
	// K40: 3 DGEMM + 3 LavaMD + HotSpot + CLAMR = 8; Phi: 4+4+2 = 10.
	if len(rows) != 18 {
		t.Fatalf("expected 18 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.SDC < 0 || r.DUE < 0 {
			t.Fatalf("negative counts: %+v", r)
		}
	}
}

func TestBuildABFTCoverage(t *testing.T) {
	rows := BuildABFTCoverage(k40.New(), TestScale, cfg(200))
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CorrectableFraction < 0 || r.CorrectableFraction > 1 {
			t.Fatalf("fraction out of range: %+v", r)
		}
		if math.Abs(r.CorrectableFraction+r.ResidualFraction-1) > 1e-12 {
			t.Fatal("fractions do not sum to 1")
		}
	}
}

func TestFITIsFacilityInvariant(t *testing.T) {
	// FIT normalises errors by fluence, so the same device+workload must
	// yield the same failure rate whether measured under LANSCE's or
	// ISIS's flux (§IV-D: both "provide the predicted error rates on a
	// realistic application"). Identical seeds give identical strike
	// streams; only the flux bookkeeping differs.
	base := DefaultConfig(13, 200)
	lansce := base
	lansce.Facility = beam.LANSCE
	isis := base
	isis.Facility = beam.ISIS
	a := Run(k40.New(), dgemm.New(128), lansce)
	b := Run(k40.New(), dgemm.New(128), isis)
	fa, fb := a.SDCFIT(0), b.SDCFIT(0)
	if fa <= 0 {
		t.Fatal("zero FIT")
	}
	if diff := math.Abs(fa-fb) / fa; diff > 1e-9 {
		t.Fatalf("FIT depends on facility flux: %v vs %v", fa, fb)
	}
	// Beam hours, however, must shrink under the hotter ISIS beam.
	if b.Exposure.BeamHours >= a.Exposure.BeamHours {
		t.Fatal("higher flux should need fewer beam hours for the same strikes")
	}
}

func TestResourceAttributionConsistent(t *testing.T) {
	res := Run(k40.New(), dgemm.New(128), cfg(300))
	if len(res.ReportResource) != len(res.Reports) {
		t.Fatal("one resource per SDC report expected")
	}
	var tallySum injector.Tally
	for _, tl := range res.ResourceTally {
		tallySum.Masked += tl.Masked
		tallySum.SDC += tl.SDC
		tallySum.Crash += tl.Crash
		tallySum.Hang += tl.Hang
	}
	if tallySum != res.Tally {
		t.Fatalf("per-resource tallies %+v do not sum to %+v", tallySum, res.Tally)
	}
}

func TestOutcomeClassesStable(t *testing.T) {
	// Guard the fault class values used by ToLog/logdata.
	if fault.Masked != 0 || fault.SDC != 1 || fault.Crash != 2 || fault.Hang != 3 {
		t.Fatal("outcome class values changed; update logdata consumers")
	}
}
