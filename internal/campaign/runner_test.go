package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"radcrit/internal/arch"
	"radcrit/internal/grid"
	"radcrit/internal/injector"
	"radcrit/internal/kernels"
	"radcrit/internal/metrics"
	"radcrit/internal/xrand"
)

// goldenPlanJSON is the goldenTable's experiment matrix written as a
// declarative JSON plan: the same seed-42/300-strike cells, one plan.
const goldenPlanJSON = `{
  "name": "golden",
  "seed": 42,
  "strikes": 300,
  "thresholds": [0, 1],
  "cells": [
    {"device": "k40", "kernel": "dgemm:128"},
    {"device": "k40", "kernel": "lavamd:4"},
    {"device": "k40", "kernel": "hotspot:64x80"},
    {"device": "k40", "kernel": "clamr:48x60"},
    {"device": "phi", "kernel": "dgemm:128"},
    {"device": "phi", "kernel": "lavamd:3"},
    {"device": "phi", "kernel": "hotspot:64x80"},
    {"device": "phi", "kernel": "clamr:48x60"}
  ]
}`

// TestPlanReproducesGoldenTable is the plan API's regression anchor: a
// campaign defined entirely as JSON must reproduce the frozen
// seed-42/300-strike table bit for bit through every Runner — the batch
// engine, the streaming reducer stack, and the concurrent matrix.
func TestPlanReproducesGoldenTable(t *testing.T) {
	plan, err := LoadPlan(strings.NewReader(goldenPlanJSON))
	if err != nil {
		t.Fatalf("golden plan failed to load: %v", err)
	}
	runners := map[string]Runner{
		"batch":  &BatchRunner{},
		"stream": &StreamRunner{},
		"matrix": &MatrixRunner{},
	}
	for rname, r := range runners {
		res, err := r.Run(context.Background(), plan)
		if err != nil {
			t.Fatalf("%s: %v", rname, err)
		}
		if len(res.Cells) != len(goldenTable) {
			t.Fatalf("%s: %d outcomes for %d golden cells", rname, len(res.Cells), len(goldenTable))
		}
		for i, want := range goldenTable {
			out := res.Cells[i]
			label := fmt.Sprintf("%s: %s/%s/%s", rname, want.device, want.kernel, want.input)
			if out.Err != nil {
				t.Fatalf("%s: cell failed: %v", label, out.Err)
			}
			if out.Info.Device != want.device || out.Info.Kernel != want.kernel || out.Info.Input != want.input {
				t.Fatalf("%s: cell resolved to %s/%s/%s",
					label, out.Info.Device, out.Info.Kernel, out.Info.Input)
			}
			s := out.Summary
			wantTally := injector.Tally{Masked: want.masked, SDC: want.sdc, Crash: want.crash, Hang: want.hang}
			if s.Tally != wantTally {
				t.Errorf("%s: tally %+v, table pins %+v", label, s.Tally, wantTally)
			}
			requireGoldenFloat(t, label+": SDCFIT[0]", s.SDCFIT[0], want.sdcFIT0)
			requireGoldenFloat(t, label+": SDCFIT[1]", s.SDCFIT[1], want.sdcFIT1)
			for k, hex := range want.locality {
				requireGoldenFloat(t, label+": locality["+s.Locality[0].Labels[k]+"]",
					s.Locality[0].Values[k], hex)
			}
			if rname == "stream" && out.Result != nil {
				t.Errorf("%s: streaming runner retained a batch Result", label)
			}
			if rname != "stream" && out.Result == nil {
				t.Errorf("%s: batch-family runner dropped its Result", label)
			}
		}
	}
}

// TestStreamRunnerCancellation pins graceful cancellation: cancelling
// mid-cell surfaces ctx.Err(), keeps the chunk-aligned partial reducer
// state, marks unreached cells, and leaks no goroutines.
func TestStreamRunnerCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	plan := NewPlan(7, 1000).
		WithCell("k40", "dgemm:128").
		WithCell("phi", "dgemm:128").
		WithWorkers(4).
		WithStreamChunk(100)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAt = 200
	r := &StreamRunner{Progress: Progress{
		OnChunk: func(cell, done int) {
			if cell == 0 && done >= cancelAt {
				cancel()
			}
		},
	}}
	res, err := r.Run(ctx, plan)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if res == nil || len(res.Cells) != 2 {
		t.Fatalf("cancelled run returned no partial result")
	}
	out := res.Cells[0]
	if !errors.Is(out.Err, context.Canceled) {
		t.Errorf("in-flight cell Err = %v", out.Err)
	}
	if out.Summary == nil {
		t.Fatalf("in-flight cell lost its partial reducer state")
	}
	tot := out.Summary.Tally.Masked + out.Summary.Tally.SDC + out.Summary.Tally.Crash + out.Summary.Tally.Hang
	if tot != cancelAt {
		t.Errorf("partial state covers %d strikes, want the chunk-aligned %d", tot, cancelAt)
	}
	if !errors.Is(res.Cells[1].Err, context.Canceled) {
		t.Errorf("unreached cell Err = %v", res.Cells[1].Err)
	}

	// The partial prefix must be bit-identical to an uncancelled run of
	// exactly cancelAt strikes (determinism is chunk-prefix-closed), and
	// the partial FITs must be true rates over that prefix exposure, not
	// diluted by the cancelled tail.
	full := NewTallyReducer()
	counts := NewSDCCountReducer(out.Summary.Thresholds...)
	refInfo, err := RunStreamingFrom(mustDev(t, "k40"), mustKern(t, "dgemm:128"),
		Config{Seed: 7, Strikes: cancelAt, BaseExecSeconds: 1.0, Facility: plan.Config().Facility, StreamChunk: 100},
		0, full, counts)
	if err != nil {
		t.Fatalf("reference prefix: %v", err)
	}
	if full.Tally != out.Summary.Tally {
		t.Errorf("partial tally %+v differs from reference prefix %+v", out.Summary.Tally, full.Tally)
	}
	for k := range out.Summary.Thresholds {
		if want := counts.FIT(k, refInfo.Exposure); out.Summary.SDCFIT[k] != want {
			t.Errorf("partial SDCFIT[%d] = %v, want the prefix rate %v", k, out.Summary.SDCFIT[k], want)
		}
	}

	waitForGoroutines(t, before)
}

func TestBatchRunnerCancellationBetweenCells(t *testing.T) {
	before := runtime.NumGoroutine()
	plan := NewPlan(9, 120).
		WithCell("k40", "dgemm:128").
		WithCell("phi", "dgemm:128")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := &BatchRunner{Progress: Progress{
		OnCell: func(i int, out *CellOutcome) {
			if i == 0 {
				cancel()
			}
		},
	}}
	res, err := r.Run(ctx, plan)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
	if res.Cells[0].Err != nil || res.Cells[0].Summary == nil {
		t.Errorf("completed cell lost its outcome: %+v", res.Cells[0])
	}
	if !errors.Is(res.Cells[1].Err, context.Canceled) || res.Cells[1].Summary != nil {
		t.Errorf("unreached cell = %+v", res.Cells[1])
	}
	waitForGoroutines(t, before)
}

func TestMatrixRunnerPreCancelled(t *testing.T) {
	plan := NewPlan(9, 50).WithKernelOnDevices("dgemm:128", "k40", "phi")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&MatrixRunner{}).Run(ctx, plan); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v", err)
	}
}

// TestBuildCtxHonoursCancellation pins that the construction phase — the
// expensive golden simulations of iterative kernels — is abandoned under
// a cancelled context instead of building the whole plan first.
func TestBuildCtxHonoursCancellation(t *testing.T) {
	plan := NewPlan(9, 50).WithCell("k40", "hotspot:64x80")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plan.BuildCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled BuildCtx returned %v", err)
	}
	for name, r := range map[string]Runner{
		"batch": &BatchRunner{}, "stream": &StreamRunner{}, "matrix": &MatrixRunner{},
	} {
		res, err := r.Run(ctx, plan)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: pre-cancelled Run returned %v", name, err)
		}
		// Even build-phase cancellation honours the partial-result
		// contract: a shell with every cell marked, never a nil result.
		if res == nil || len(res.Cells) != 1 || !errors.Is(res.Cells[0].Err, context.Canceled) {
			t.Errorf("%s: build-phase cancellation returned %+v", name, res)
		}
	}
}

// stubKernel is a kernel whose profile never validates: the cell-failure
// path of every engine.
type stubKernel struct{}

func (stubKernel) Name() string         { return "Stub" }
func (stubKernel) Domain() string       { return "test" }
func (stubKernel) InputLabel() string   { return "0x0" }
func (stubKernel) Class() kernels.Class { return kernels.Class{} }
func (stubKernel) Profile(arch.Device) arch.Profile {
	return arch.Profile{Kernel: "stub", OutputDims: grid.Dims{}}
}
func (stubKernel) Golden(arch.Device) kernels.GoldenState { return nil }
func (stubKernel) RunInjected(arch.Device, arch.Injection, *xrand.RNG) *metrics.Report {
	return nil
}
func (stubKernel) RunInjectedOn(kernels.GoldenState, arch.Injection, *xrand.RNG) *metrics.Report {
	return nil
}
func (stubKernel) RunInjectedPooled(kernels.GoldenState, arch.Injection, *xrand.RNG, *metrics.ReportPool) *metrics.Report {
	return nil
}

// TestCellErrorCachedNotRepanicked pins the satellite fix: a failed cell
// returns a typed *CellError through RunCtx, the memo caches that error
// (single-flight semantics preserved), and retries observe the identical
// cached failure instead of the old "previously failed to compute" panic.
func TestCellErrorCachedNotRepanicked(t *testing.T) {
	dev := mustDev(t, "k40")
	cfg := DefaultConfig(1, 10)
	_, err1 := RunCtx(context.Background(), dev, stubKernel{}, cfg)
	var ce *CellError
	if !errors.As(err1, &ce) {
		t.Fatalf("want *CellError, got %T: %v", err1, err1)
	}
	if ce.Device != "K40" || ce.Kernel != "Stub" || ce.Input != "0x0" {
		t.Errorf("CellError lacks cell identity: %+v", ce)
	}
	_, err2 := RunCtx(context.Background(), dev, stubKernel{}, cfg)
	if err1 != err2 {
		t.Errorf("second call recomputed the failure: %v vs %v", err1, err2)
	}
}

// TestCancelledCellNotCached pins that a context cancellation is never
// memoised: the next caller with a live context gets the real result.
func TestCancelledCellNotCached(t *testing.T) {
	dev := mustDev(t, "phi")
	kern := mustKern(t, "lavamd:3")
	cfg := DefaultConfig(1234, 200)
	cfg.StreamChunk = 16
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, dev, kern, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunCtx returned %v", err)
	}
	res, err := RunCtx(context.Background(), dev, kern, cfg)
	if err != nil || res == nil {
		t.Fatalf("cache poisoned by cancellation: %v", err)
	}
	if got := res.Tally.Masked + res.Tally.SDC + res.Tally.Crash + res.Tally.Hang; got != 200 {
		t.Errorf("retry ran %d strikes, want 200", got)
	}
}

// panicKernel panics during session setup: the worst-case third-party
// kernel bug the memo must survive.
type panicKernel struct{ stubKernel }

func (panicKernel) Name() string { return "PanicStub" }
func (panicKernel) Profile(arch.Device) arch.Profile {
	panic("third-party kernel bug")
}

// TestPanickingCellDoesNotWedgeMemo pins that a panic escaping a cell
// computation returns the single-flight slot to idle: the panic
// propagates to the caller, but later callers of the same cell retry
// (and observe the same panic) instead of blocking forever on a wake
// channel that never closes.
func TestPanickingCellDoesNotWedgeMemo(t *testing.T) {
	dev := mustDev(t, "k40")
	cfg := DefaultConfig(1, 10)
	mustPanic := func(call int) {
		defer func() {
			if recover() == nil {
				t.Fatalf("call %d: kernel panic was swallowed", call)
			}
		}()
		_, _ = RunCtx(context.Background(), dev, panicKernel{}, cfg)
	}
	mustPanic(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		mustPanic(2)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("second call deadlocked on the wedged memo entry")
	}
}

// TestSingleFlightFollowerCancellable pins the memo's waiting contract: a
// caller queued behind another caller's in-flight computation of the same
// cell must honour its own context instead of blocking until the leader
// finishes — and the leader must still complete and populate the cache.
func TestSingleFlightFollowerCancellable(t *testing.T) {
	dev := mustDev(t, "k40")
	kern := mustKern(t, "dgemm:128")
	cfg := DefaultConfig(777, 3000) // long enough that a leader is usually mid-flight
	cfg.StreamChunk = 64

	leaderDone := make(chan *Result, 1)
	go func() {
		res, err := RunCtx(context.Background(), dev, kern, cfg)
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		leaderDone <- res
	}()

	// Whichever state the follower finds — queued behind the leader, or
	// leading itself — a cancelled context must surface promptly as
	// ctx.Err(), never as a wait for the full strike loop.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := RunCtx(ctx, dev, kern, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower returned %v", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("cancelled follower blocked %v behind the leader", waited)
	}

	res := <-leaderDone
	if res == nil {
		t.Fatal("leader produced no result")
	}
	// The cache must now be warm: a background-context call returns the
	// leader's exact result.
	again, err := RunCtx(context.Background(), dev, kern, cfg)
	if err != nil || again != res {
		t.Errorf("cache not populated by leader: %v (same=%v)", err, again == res)
	}
}

func mustDev(t *testing.T, name string) arch.Device {
	t.Helper()
	for _, d := range Devices() {
		if (name == "k40" && d.ShortName() == "K40") || (name == "phi" && d.ShortName() == "XeonPhi") {
			return d
		}
	}
	t.Fatalf("no device %q", name)
	return nil
}

func mustKern(t *testing.T, spec string) kernels.Kernel {
	t.Helper()
	cells, err := NewPlan(1, 1).WithCell("k40", spec).Build()
	if err != nil {
		t.Fatalf("kernel %q: %v", spec, err)
	}
	return cells[0].Kern
}

// waitForGoroutines asserts the goroutine count settles back to (near)
// its pre-test level: cancellation must not leak workers.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var now int
	for time.Now().Before(deadline) {
		now = runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d before, %d after cancellation", before, now)
}

// TestProgressHooks pins hook delivery order and coverage.
func TestProgressHooks(t *testing.T) {
	plan := NewPlan(3, 64).
		WithKernelOnDevices("dgemm:128", "k40", "phi").
		WithStreamChunk(32)
	var cells atomic.Int32
	var chunks atomic.Int32
	r := &StreamRunner{Progress: Progress{
		OnCell:  func(int, *CellOutcome) { cells.Add(1) },
		OnChunk: func(int, int) { chunks.Add(1) },
	}}
	if _, err := r.Run(context.Background(), plan); err != nil {
		t.Fatalf("run: %v", err)
	}
	if cells.Load() != 2 {
		t.Errorf("OnCell fired %d times for 2 cells", cells.Load())
	}
	if chunks.Load() != 4 {
		t.Errorf("OnChunk fired %d times, want 4 (2 cells x 2 chunks)", chunks.Load())
	}
}
