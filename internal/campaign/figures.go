package campaign

import (
	"radcrit/internal/abft"
	"radcrit/internal/arch"
	"radcrit/internal/beam"
	"radcrit/internal/detect"
	"radcrit/internal/fault"
	"radcrit/internal/fit"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/kernels/lavamd"
	"radcrit/internal/metrics"
	"radcrit/internal/xrand"
)

// ScatterSeries is the data behind one subfigure of Figures 2, 4, 6, 8:
// one (incorrect elements, mean relative error) point per SDC, grouped by
// input size.
type ScatterSeries struct {
	Device string
	Kernel string
	// CapPct is the relative-error display cap applied (100% for DGEMM,
	// 20,000% for LavaMD, per the paper's figure notes).
	CapPct float64
	Series []LabeledPoints
}

// LabeledPoints is one input size's point cloud.
type LabeledPoints struct {
	Label  string
	Points []ScatterPoint
}

// BuildDGEMMScatter produces Fig. 2a/2b for a device.
func BuildDGEMMScatter(dev arch.Device, s Scale, cfg Config) ScatterSeries {
	out := ScatterSeries{Device: dev.ShortName(), Kernel: "DGEMM", CapPct: 100}
	for _, n := range DGEMMSizes(s, dev) {
		res := Run(dev, dgemm.New(n), cfg)
		out.Series = append(out.Series, LabeledPoints{
			Label:  res.Input,
			Points: res.Scatter(out.CapPct),
		})
	}
	return out
}

// BuildLavaMDScatter produces Fig. 4a/4b for a device.
func BuildLavaMDScatter(dev arch.Device, s Scale, cfg Config) ScatterSeries {
	out := ScatterSeries{Device: dev.ShortName(), Kernel: "LavaMD", CapPct: 20000}
	for _, g := range LavaMDSizes(s, dev) {
		res := Run(dev, lavamd.New(g), cfg)
		out.Series = append(out.Series, LabeledPoints{
			Label:  res.Input,
			Points: res.Scatter(out.CapPct),
		})
	}
	return out
}

// BuildHotSpotScatter produces Fig. 6a/6b for a device.
func BuildHotSpotScatter(dev arch.Device, s Scale, cfg Config) ScatterSeries {
	res := Run(dev, HotSpotKernel(s), cfg)
	return ScatterSeries{
		Device: dev.ShortName(),
		Kernel: "HotSpot",
		CapPct: 0,
		Series: []LabeledPoints{{Label: res.Input, Points: res.Scatter(0)}},
	}
}

// BuildCLAMRScatter produces Fig. 8 (Xeon Phi only in the paper).
func BuildCLAMRScatter(dev arch.Device, s Scale, cfg Config) ScatterSeries {
	res := Run(dev, CLAMRKernel(s), cfg)
	return ScatterSeries{
		Device: dev.ShortName(),
		Kernel: "CLAMR",
		CapPct: 0,
		Series: []LabeledPoints{{Label: res.Input, Points: res.Scatter(0)}},
	}
}

// LocalityBar is one input size's FIT breakdown pair in Figures 3, 5, 7.
type LocalityBar struct {
	Input string
	// All is the unfiltered breakdown, Filtered the >threshold one.
	All      fit.Breakdown
	Filtered fit.Breakdown
	// FilterMeaningful is false when no mismatch fell below the filter
	// (the paper then shows only the All bar, e.g. DGEMM on the Phi).
	FilterMeaningful bool
}

// LocalityFigure is one subfigure of Figures 3, 5, 7.
type LocalityFigure struct {
	Device       string
	Kernel       string
	ThresholdPct float64
	Bars         []LocalityBar
}

// BuildDGEMMLocality produces Fig. 3a/3b.
func BuildDGEMMLocality(dev arch.Device, s Scale, cfg Config, thresholdPct float64) LocalityFigure {
	out := LocalityFigure{Device: dev.ShortName(), Kernel: "DGEMM", ThresholdPct: thresholdPct}
	for _, n := range DGEMMSizes(s, dev) {
		res := Run(dev, dgemm.New(n), cfg)
		out.Bars = append(out.Bars, localityBar(res, thresholdPct))
	}
	return out
}

// BuildLavaMDLocality produces Fig. 5a/5b.
func BuildLavaMDLocality(dev arch.Device, s Scale, cfg Config, thresholdPct float64) LocalityFigure {
	out := LocalityFigure{Device: dev.ShortName(), Kernel: "LavaMD", ThresholdPct: thresholdPct}
	for _, g := range LavaMDSizes(s, dev) {
		res := Run(dev, lavamd.New(g), cfg)
		out.Bars = append(out.Bars, localityBar(res, thresholdPct))
	}
	return out
}

// BuildHotSpotLocality produces Fig. 7a/7b.
func BuildHotSpotLocality(dev arch.Device, s Scale, cfg Config, thresholdPct float64) LocalityFigure {
	res := Run(dev, HotSpotKernel(s), cfg)
	return LocalityFigure{
		Device:       dev.ShortName(),
		Kernel:       "HotSpot",
		ThresholdPct: thresholdPct,
		Bars:         []LocalityBar{localityBar(res, thresholdPct)},
	}
}

func localityBar(res *Result, thresholdPct float64) LocalityBar {
	return LocalityBar{
		Input:            res.Input,
		All:              res.LocalityBreakdown(0),
		Filtered:         res.LocalityBreakdown(thresholdPct),
		FilterMeaningful: res.FilteredFraction(thresholdPct) > 0,
	}
}

// RatioRow is one (device, kernel, input) SDC:DUE ratio (§V preamble).
type RatioRow struct {
	Device string
	Kernel string
	Input  string
	SDC    int
	DUE    int
	Ratio  float64
}

// BuildSDCRatios produces the §V preamble statistics for every kernel and
// input size on both devices.
func BuildSDCRatios(s Scale, cfg Config) []RatioRow {
	var rows []RatioRow
	for _, dev := range Devices() {
		for _, n := range DGEMMSizes(s, dev) {
			rows = append(rows, ratioRow(Run(dev, dgemm.New(n), cfg)))
		}
		for _, g := range LavaMDSizes(s, dev) {
			rows = append(rows, ratioRow(Run(dev, lavamd.New(g), cfg)))
		}
		rows = append(rows, ratioRow(Run(dev, HotSpotKernel(s), cfg)))
		rows = append(rows, ratioRow(Run(dev, CLAMRKernel(s), cfg)))
	}
	return rows
}

func ratioRow(res *Result) RatioRow {
	return RatioRow{
		Device: res.Device,
		Kernel: res.Kernel,
		Input:  res.Input,
		SDC:    res.Tally.SDC,
		DUE:    res.Tally.Crash + res.Tally.Hang,
		Ratio:  res.Tally.SDCToDUERatio(),
	}
}

// ScalingRow captures FIT growth with input size (§V-A: K40 DGEMM FIT
// grows ~7x (All) / ~5x (>2%) across the sweep; Phi only ~1.8x).
type ScalingRow struct {
	Device       string
	Input        string
	FITAll       float64
	FITFiltered  float64
	GrowthAll    float64 // relative to the smallest input
	GrowthFilter float64
}

// BuildDGEMMScaling produces the input-size FIT scaling series.
func BuildDGEMMScaling(dev arch.Device, s Scale, cfg Config, thresholdPct float64) []ScalingRow {
	var rows []ScalingRow
	var baseAll, baseF float64
	for i, n := range DGEMMSizes(s, dev) {
		res := Run(dev, dgemm.New(n), cfg)
		all := res.SDCFIT(0)
		fl := res.SDCFIT(thresholdPct)
		if i == 0 {
			baseAll, baseF = all, fl
		}
		row := ScalingRow{Device: res.Device, Input: res.Input, FITAll: all, FITFiltered: fl}
		if baseAll > 0 {
			row.GrowthAll = all / baseAll
		}
		if baseF > 0 {
			row.GrowthFilter = fl / baseF
		}
		rows = append(rows, row)
	}
	return rows
}

// ABFTRow is one device's ABFT-correctable share of DGEMM errors (§V-A).
type ABFTRow struct {
	Device string
	Input  string
	// CorrectableFraction is the share of SDCs with single/line locality.
	CorrectableFraction float64
	// ResidualFraction is the square+random share ABFT cannot repair.
	ResidualFraction float64
}

// BuildABFTCoverage evaluates the ABFT-correctable share of DGEMM SDCs per
// input size (§V-A: "applying ABFT, DGEMM would be affected by only 20% to
// 40% of all errors on K40, and 60% to 80% on Xeon Phi").
func BuildABFTCoverage(dev arch.Device, s Scale, cfg Config) []ABFTRow {
	var rows []ABFTRow
	for _, n := range DGEMMSizes(s, dev) {
		res := Run(dev, dgemm.New(n), cfg)
		cov := abft.EvaluateCoverage(res.Reports)
		frac := cov.CorrectableFraction()
		rows = append(rows, ABFTRow{
			Device:              res.Device,
			Input:               res.Input,
			CorrectableFraction: frac,
			ResidualFraction:    1 - frac,
		})
	}
	return rows
}

// MassCheckRow is the CLAMR detector-coverage statistic (§V-D: 82%).
type MassCheckRow struct {
	Device       string
	CriticalSDCs int
	Detected     int
	Coverage     float64
}

// BuildMassCheckCoverage runs CLAMR strikes and evaluates the mass check
// against critical (above-threshold) SDCs.
func BuildMassCheckCoverage(dev arch.Device, s Scale, cfg Config, thresholdPct float64) MassCheckRow {
	k := CLAMRKernel(s)
	prof := k.Profile(dev)
	rng := xrand.New(cfg.Seed).SplitString(dev.ShortName()).SplitString("masscheck")
	var stats detect.CoverageStats
	for i := 0; i < cfg.Strikes; i++ {
		sub := rng.Split(uint64(i) + 1)
		strike := fault.Strike{When: sub.Float64(), Energy: beam.StrikeEnergy(sub)}
		syn := dev.ResolveStrike(prof, strike, sub)
		if syn.Outcome != fault.SDC {
			continue
		}
		rep, det := k.RunInjectedDetailed(dev, syn.Injection, sub)
		if !rep.Filter(thresholdPct).IsSDC() {
			continue
		}
		stats.Add(det.MassCheckFired)
	}
	return MassCheckRow{
		Device:       dev.ShortName(),
		CriticalSDCs: stats.Evaluated,
		Detected:     stats.Detected,
		Coverage:     stats.Coverage(),
	}
}

// LocalityMap is Fig. 9: the 2D positions of one CLAMR SDC's incorrect
// elements.
type LocalityMap struct {
	Width, Height int
	Marked        [][]bool
	Count         int
}

// BuildCLAMRLocalityMap runs CLAMR strikes until an SDC with a sizeable
// error wave appears and maps it (Fig. 9).
func BuildCLAMRLocalityMap(dev arch.Device, s Scale, cfg Config) LocalityMap {
	k := CLAMRKernel(s)
	var best *metrics.Report
	// The paper's Fig. 9 shows a mid-flight error wave: prefer the SDC
	// whose corrupted area is closest to a third of the output — larger
	// ones have already flooded the whole domain, smaller ones have not
	// yet developed the wave shape.
	target := k.Side() * k.Side() / 3
	score := func(rep *metrics.Report) int {
		d := rep.Count() - target
		if d < 0 {
			return -d
		}
		return d
	}
	rng := xrand.New(cfg.Seed).SplitString(dev.ShortName()).SplitString("fig9")
	for i := 0; i < cfg.Strikes; i++ {
		sub := rng.Split(uint64(i) + 1)
		strike := fault.Strike{When: sub.Float64(), Energy: beam.StrikeEnergy(sub)}
		prof := k.Profile(dev)
		syn := dev.ResolveStrike(prof, strike, sub)
		if syn.Outcome != fault.SDC {
			continue
		}
		rep := k.RunInjected(dev, syn.Injection, sub)
		if rep.Count() == 0 {
			continue
		}
		if best == nil || score(rep) < score(best) {
			best = rep
		}
	}
	m := LocalityMap{Width: k.Side(), Height: k.Side()}
	m.Marked = make([][]bool, m.Height)
	for i := range m.Marked {
		m.Marked[i] = make([]bool, m.Width)
	}
	if best != nil {
		for _, mm := range best.Mismatches {
			m.Marked[mm.Coord.Y][mm.Coord.X] = true
		}
		m.Count = best.Count()
	}
	return m
}
