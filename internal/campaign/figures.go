package campaign

import (
	"radcrit/internal/abft"
	"radcrit/internal/arch"
	"radcrit/internal/beam"
	"radcrit/internal/detect"
	"radcrit/internal/fault"
	"radcrit/internal/fit"
	"radcrit/internal/metrics"
	"radcrit/internal/par"
	"radcrit/internal/xrand"
)

// ScatterSeries is the data behind one subfigure of Figures 2, 4, 6, 8:
// one (incorrect elements, mean relative error) point per SDC, grouped by
// input size.
type ScatterSeries struct {
	Device string
	Kernel string
	// CapPct is the relative-error display cap applied (100% for DGEMM,
	// 20,000% for LavaMD, per the paper's figure notes).
	CapPct float64
	Series []LabeledPoints
}

// LabeledPoints is one input size's point cloud.
type LabeledPoints struct {
	Label  string
	Points []ScatterPoint
}

// BuildDGEMMScatter produces Fig. 2a/2b for a device.
func BuildDGEMMScatter(dev arch.Device, s Scale, cfg Config) ScatterSeries {
	out := ScatterSeries{Device: dev.ShortName(), Kernel: "DGEMM", CapPct: 100}
	for _, res := range RunMatrix(DGEMMCells(dev, s), cfg) {
		out.Series = append(out.Series, LabeledPoints{
			Label:  res.Input,
			Points: res.Scatter(out.CapPct),
		})
	}
	return out
}

// BuildLavaMDScatter produces Fig. 4a/4b for a device.
func BuildLavaMDScatter(dev arch.Device, s Scale, cfg Config) ScatterSeries {
	out := ScatterSeries{Device: dev.ShortName(), Kernel: "LavaMD", CapPct: 20000}
	for _, res := range RunMatrix(LavaMDCells(dev, s), cfg) {
		out.Series = append(out.Series, LabeledPoints{
			Label:  res.Input,
			Points: res.Scatter(out.CapPct),
		})
	}
	return out
}

// BuildHotSpotScatter produces Fig. 6a/6b for a device.
func BuildHotSpotScatter(dev arch.Device, s Scale, cfg Config) ScatterSeries {
	res := Run(dev, HotSpotKernel(s), cfg)
	return ScatterSeries{
		Device: dev.ShortName(),
		Kernel: "HotSpot",
		CapPct: 0,
		Series: []LabeledPoints{{Label: res.Input, Points: res.Scatter(0)}},
	}
}

// BuildCLAMRScatter produces Fig. 8 (Xeon Phi only in the paper).
func BuildCLAMRScatter(dev arch.Device, s Scale, cfg Config) ScatterSeries {
	res := Run(dev, CLAMRKernel(s), cfg)
	return ScatterSeries{
		Device: dev.ShortName(),
		Kernel: "CLAMR",
		CapPct: 0,
		Series: []LabeledPoints{{Label: res.Input, Points: res.Scatter(0)}},
	}
}

// LocalityBar is one input size's FIT breakdown pair in Figures 3, 5, 7.
type LocalityBar struct {
	Input string
	// All is the unfiltered breakdown, Filtered the >threshold one.
	All      fit.Breakdown
	Filtered fit.Breakdown
	// FilterMeaningful is false when no mismatch fell below the filter
	// (the paper then shows only the All bar, e.g. DGEMM on the Phi).
	FilterMeaningful bool
}

// LocalityFigure is one subfigure of Figures 3, 5, 7.
type LocalityFigure struct {
	Device       string
	Kernel       string
	ThresholdPct float64
	Bars         []LocalityBar
}

// BuildDGEMMLocality produces Fig. 3a/3b.
func BuildDGEMMLocality(dev arch.Device, s Scale, cfg Config, thresholdPct float64) LocalityFigure {
	out := LocalityFigure{Device: dev.ShortName(), Kernel: "DGEMM", ThresholdPct: thresholdPct}
	for _, res := range RunMatrix(DGEMMCells(dev, s), cfg) {
		out.Bars = append(out.Bars, localityBar(res, thresholdPct))
	}
	return out
}

// BuildLavaMDLocality produces Fig. 5a/5b.
func BuildLavaMDLocality(dev arch.Device, s Scale, cfg Config, thresholdPct float64) LocalityFigure {
	out := LocalityFigure{Device: dev.ShortName(), Kernel: "LavaMD", ThresholdPct: thresholdPct}
	for _, res := range RunMatrix(LavaMDCells(dev, s), cfg) {
		out.Bars = append(out.Bars, localityBar(res, thresholdPct))
	}
	return out
}

// BuildHotSpotLocality produces Fig. 7a/7b.
func BuildHotSpotLocality(dev arch.Device, s Scale, cfg Config, thresholdPct float64) LocalityFigure {
	res := Run(dev, HotSpotKernel(s), cfg)
	return LocalityFigure{
		Device:       dev.ShortName(),
		Kernel:       "HotSpot",
		ThresholdPct: thresholdPct,
		Bars:         []LocalityBar{localityBar(res, thresholdPct)},
	}
}

func localityBar(res *Result, thresholdPct float64) LocalityBar {
	return LocalityBar{
		Input:            res.Input,
		All:              res.LocalityBreakdown(0),
		Filtered:         res.LocalityBreakdown(thresholdPct),
		FilterMeaningful: res.FilteredFraction(thresholdPct) > 0,
	}
}

// RatioRow is one (device, kernel, input) SDC:DUE ratio (§V preamble).
type RatioRow struct {
	Device string
	Kernel string
	Input  string
	SDC    int
	DUE    int
	Ratio  float64
}

// BuildSDCRatios produces the §V preamble statistics for every kernel and
// input size on both devices. The whole device x kernel x input matrix is
// evaluated concurrently; rows keep the §V presentation order.
func BuildSDCRatios(s Scale, cfg Config) []RatioRow {
	results := RunMatrix(AllCells(s), cfg)
	rows := make([]RatioRow, len(results))
	for i, res := range results {
		rows[i] = ratioRow(res)
	}
	return rows
}

func ratioRow(res *Result) RatioRow {
	return RatioRow{
		Device: res.Device,
		Kernel: res.Kernel,
		Input:  res.Input,
		SDC:    res.Tally.SDC,
		DUE:    res.Tally.Crash + res.Tally.Hang,
		Ratio:  res.Tally.SDCToDUERatio(),
	}
}

// ScalingRow captures FIT growth with input size (§V-A: K40 DGEMM FIT
// grows ~7x (All) / ~5x (>2%) across the sweep; Phi only ~1.8x).
type ScalingRow struct {
	Device       string
	Input        string
	FITAll       float64
	FITFiltered  float64
	GrowthAll    float64 // relative to the smallest input
	GrowthFilter float64
}

// BuildDGEMMScaling produces the input-size FIT scaling series.
func BuildDGEMMScaling(dev arch.Device, s Scale, cfg Config, thresholdPct float64) []ScalingRow {
	var rows []ScalingRow
	var baseAll, baseF float64
	for i, res := range RunMatrix(DGEMMCells(dev, s), cfg) {
		all := res.SDCFIT(0)
		fl := res.SDCFIT(thresholdPct)
		if i == 0 {
			baseAll, baseF = all, fl
		}
		row := ScalingRow{Device: res.Device, Input: res.Input, FITAll: all, FITFiltered: fl}
		if baseAll > 0 {
			row.GrowthAll = all / baseAll
		}
		if baseF > 0 {
			row.GrowthFilter = fl / baseF
		}
		rows = append(rows, row)
	}
	return rows
}

// ABFTRow is one device's ABFT-correctable share of DGEMM errors (§V-A).
type ABFTRow struct {
	Device string
	Input  string
	// CorrectableFraction is the share of SDCs with single/line locality.
	CorrectableFraction float64
	// ResidualFraction is the square+random share ABFT cannot repair.
	ResidualFraction float64
}

// BuildABFTCoverage evaluates the ABFT-correctable share of DGEMM SDCs per
// input size (§V-A: "applying ABFT, DGEMM would be affected by only 20% to
// 40% of all errors on K40, and 60% to 80% on Xeon Phi").
func BuildABFTCoverage(dev arch.Device, s Scale, cfg Config) []ABFTRow {
	var rows []ABFTRow
	for _, res := range RunMatrix(DGEMMCells(dev, s), cfg) {
		cov := abft.EvaluateCoverage(res.Reports)
		frac := cov.CorrectableFraction()
		rows = append(rows, ABFTRow{
			Device:              res.Device,
			Input:               res.Input,
			CorrectableFraction: frac,
			ResidualFraction:    1 - frac,
		})
	}
	return rows
}

// MassCheckRow is the CLAMR detector-coverage statistic (§V-D: 82%).
type MassCheckRow struct {
	Device       string
	CriticalSDCs int
	Detected     int
	Coverage     float64
}

// BuildMassCheckCoverage runs CLAMR strikes and evaluates the mass check
// against critical (above-threshold) SDCs. The profile and golden-state
// handle are prepared once; strikes fan out over the worker pool and the
// per-strike verdicts are merged in index order.
func BuildMassCheckCoverage(dev arch.Device, s Scale, cfg Config, thresholdPct float64) MassCheckRow {
	k := CLAMRKernel(s)
	prof := k.Profile(dev)
	golden := k.Golden(dev)
	rng := xrand.New(cfg.Seed).SplitString(dev.ShortName()).SplitString("masscheck")
	type verdict struct {
		critical, fired bool
	}
	verdicts := make([]verdict, cfg.Strikes)
	par.For(cfg.Strikes, cfg.Workers, func(i int) {
		sub := rng.Split(uint64(i) + 1)
		strike := fault.Strike{When: sub.Float64(), Energy: beam.StrikeEnergy(sub)}
		syn := dev.ResolveStrike(prof, strike, sub)
		if syn.Outcome != fault.SDC {
			return
		}
		rep, det := k.RunInjectedDetailedOn(golden, syn.Injection, sub)
		if !rep.Filter(thresholdPct).IsSDC() {
			return
		}
		verdicts[i] = verdict{critical: true, fired: det.MassCheckFired}
	})
	var stats detect.CoverageStats
	for _, v := range verdicts {
		if v.critical {
			stats.Add(v.fired)
		}
	}
	return MassCheckRow{
		Device:       dev.ShortName(),
		CriticalSDCs: stats.Evaluated,
		Detected:     stats.Detected,
		Coverage:     stats.Coverage(),
	}
}

// LocalityMap is Fig. 9: the 2D positions of one CLAMR SDC's incorrect
// elements.
type LocalityMap struct {
	Width, Height int
	Marked        [][]bool
	Count         int
}

// BuildCLAMRLocalityMap runs CLAMR strikes until an SDC with a sizeable
// error wave appears and maps it (Fig. 9).
//
// The search runs in two passes so the strike sweep can fan out without
// holding every candidate report in memory: pass one scores each strike in
// parallel (keeping only the incorrect-element count), then the winner —
// the lowest-scoring index, earliest on ties, exactly as the serial scan
// chose — is deterministically re-executed to materialise its report.
func BuildCLAMRLocalityMap(dev arch.Device, s Scale, cfg Config) LocalityMap {
	k := CLAMRKernel(s)
	prof := k.Profile(dev)
	golden := k.Golden(dev)
	// The paper's Fig. 9 shows a mid-flight error wave: prefer the SDC
	// whose corrupted area is closest to a third of the output — larger
	// ones have already flooded the whole domain, smaller ones have not
	// yet developed the wave shape.
	target := k.Side() * k.Side() / 3
	score := func(count int) int {
		d := count - target
		if d < 0 {
			return -d
		}
		return d
	}
	rng := xrand.New(cfg.Seed).SplitString(dev.ShortName()).SplitString("fig9")
	runStrike := func(i int) *metrics.Report {
		sub := rng.Split(uint64(i) + 1)
		strike := fault.Strike{When: sub.Float64(), Energy: beam.StrikeEnergy(sub)}
		syn := dev.ResolveStrike(prof, strike, sub)
		if syn.Outcome != fault.SDC {
			return nil
		}
		return k.RunInjectedOn(golden, syn.Injection, sub)
	}
	counts := make([]int, cfg.Strikes)
	par.For(cfg.Strikes, cfg.Workers, func(i int) {
		if rep := runStrike(i); rep != nil {
			counts[i] = rep.Count()
		}
	})
	bestIdx := -1
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if bestIdx < 0 || score(c) < score(counts[bestIdx]) {
			bestIdx = i
		}
	}
	m := LocalityMap{Width: k.Side(), Height: k.Side()}
	m.Marked = make([][]bool, m.Height)
	for i := range m.Marked {
		m.Marked[i] = make([]bool, m.Width)
	}
	if bestIdx >= 0 {
		best := runStrike(bestIdx)
		for _, mm := range best.Mismatches {
			m.Marked[mm.Coord.Y][mm.Coord.X] = true
		}
		m.Count = best.Count()
	}
	return m
}
