package campaign

import (
	"radcrit/internal/arch"
	"radcrit/internal/xrand"
)

// This file is the streaming face of the figure builders: every §V data
// series that is an aggregate — tallies, FIT values, locality breakdowns,
// filtered fractions, ABFT coverage — is computed here through online
// reducers, holding O(reducer-state) memory per cell instead of the memo
// cache's O(SDC reports). Scatter figures keep a bounded reservoir.
//
// The trade-off against the batch builders in figures.go: streaming cells
// are not memoised, so figures that share cells recompute them. Use the
// batch builders when several figures read one matrix and it fits in
// memory; use these when cells are too large to retain (cmd/figures
// -stream, million-strike campaigns).

// scatterRNG derives the deterministic reservoir-eviction stream of one
// cell: a pure function of (seed, cell), independent of Workers, chunking
// and sibling cells.
func scatterRNG(cfg Config, c Cell) *xrand.RNG {
	return xrand.New(cfg.Seed).
		SplitString(c.Dev.ShortName()).
		SplitString(c.Kern.Name()).
		SplitString(c.Kern.InputLabel()).
		SplitString("scatter-reservoir")
}

// ScatterStreaming computes a Figure-2/4/6/8 style series over cells (one
// labeled point cloud per cell, at most maxPoints points each; maxPoints
// <= 0 keeps every point). All cells must belong to one device and kernel
// family, as in the batch builders.
func ScatterStreaming(kernelName string, capPct float64, maxPoints int, cells []Cell, cfg Config) (ScatterSeries, error) {
	reducers := make([]*ScatterReducer, len(cells))
	infos, err := StreamMatrix(cells, cfg, func(i int, c Cell) []Sink {
		reducers[i] = NewScatterReducer(capPct, maxPoints, scatterRNG(cfg, c))
		return []Sink{reducers[i]}
	})
	if err != nil {
		return ScatterSeries{}, err
	}
	out := ScatterSeries{Kernel: kernelName, CapPct: capPct}
	for i, info := range infos {
		out.Device = info.Device
		out.Series = append(out.Series, LabeledPoints{
			Label:  info.Input,
			Points: reducers[i].Points(),
		})
	}
	return out, nil
}

// LocalityStreaming computes a Figure-3/5/7 style locality figure over
// cells without retaining reports.
func LocalityStreaming(kernelName string, cells []Cell, cfg Config, thresholdPct float64) (LocalityFigure, error) {
	type cellReducers struct {
		all      *LocalityReducer
		filtered *LocalityReducer
		fraction *FilteredFractionReducer
	}
	reducers := make([]cellReducers, len(cells))
	infos, err := StreamMatrix(cells, cfg, func(i int, c Cell) []Sink {
		reducers[i] = cellReducers{
			all:      NewLocalityReducer(0),
			filtered: NewLocalityReducer(thresholdPct),
			fraction: NewFilteredFractionReducer(thresholdPct),
		}
		return []Sink{reducers[i].all, reducers[i].filtered, reducers[i].fraction}
	})
	if err != nil {
		return LocalityFigure{}, err
	}
	out := LocalityFigure{Kernel: kernelName, ThresholdPct: thresholdPct}
	for i, info := range infos {
		out.Device = info.Device
		out.Bars = append(out.Bars, LocalityBar{
			Input:            info.Input,
			All:              reducers[i].all.Breakdown(info.Exposure),
			Filtered:         reducers[i].filtered.Breakdown(info.Exposure),
			FilterMeaningful: reducers[i].fraction.Fraction() > 0,
		})
	}
	return out, nil
}

// SDCRatiosStreaming computes the §V preamble SDC:DUE statistics for the
// whole device x kernel x input matrix through tally reducers.
func SDCRatiosStreaming(s Scale, cfg Config) ([]RatioRow, error) {
	cells := AllCells(s)
	reducers := make([]*TallyReducer, len(cells))
	infos, err := StreamMatrix(cells, cfg, func(i int, c Cell) []Sink {
		reducers[i] = NewTallyReducer()
		return []Sink{reducers[i]}
	})
	if err != nil {
		return nil, err
	}
	rows := make([]RatioRow, len(cells))
	for i, info := range infos {
		t := reducers[i].Tally
		rows[i] = RatioRow{
			Device: info.Device,
			Kernel: info.Kernel,
			Input:  info.Input,
			SDC:    t.SDC,
			DUE:    t.Crash + t.Hang,
			Ratio:  t.SDCToDUERatio(),
		}
	}
	return rows, nil
}

// DGEMMScalingStreaming computes the §V-A input-size FIT scaling series
// through per-threshold SDC counters.
func DGEMMScalingStreaming(dev arch.Device, s Scale, cfg Config, thresholdPct float64) ([]ScalingRow, error) {
	cells := DGEMMCells(dev, s)
	reducers := make([]*SDCCountReducer, len(cells))
	infos, err := StreamMatrix(cells, cfg, func(i int, c Cell) []Sink {
		reducers[i] = NewSDCCountReducer(0, thresholdPct)
		return []Sink{reducers[i]}
	})
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	var baseAll, baseF float64
	for i, info := range infos {
		all := reducers[i].FIT(0, info.Exposure)
		fl := reducers[i].FIT(1, info.Exposure)
		if i == 0 {
			baseAll, baseF = all, fl
		}
		row := ScalingRow{Device: info.Device, Input: info.Input, FITAll: all, FITFiltered: fl}
		if baseAll > 0 {
			row.GrowthAll = all / baseAll
		}
		if baseF > 0 {
			row.GrowthFilter = fl / baseF
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ABFTCoverageStreaming computes the §V-A ABFT-correctable share of DGEMM
// SDCs per input size through online coverage classification.
func ABFTCoverageStreaming(dev arch.Device, s Scale, cfg Config) ([]ABFTRow, error) {
	cells := DGEMMCells(dev, s)
	reducers := make([]*ABFTReducer, len(cells))
	infos, err := StreamMatrix(cells, cfg, func(i int, c Cell) []Sink {
		reducers[i] = NewABFTReducer()
		return []Sink{reducers[i]}
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ABFTRow, len(cells))
	for i, info := range infos {
		frac := reducers[i].Coverage.CorrectableFraction()
		rows[i] = ABFTRow{
			Device:              info.Device,
			Input:               info.Input,
			CorrectableFraction: frac,
			ResidualFraction:    1 - frac,
		}
	}
	return rows, nil
}
