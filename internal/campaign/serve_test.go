package campaign

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"

	"radcrit/internal/k40"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/logdata"
)

// TestCellKeyCanonicalisation pins the content-address contract: every
// field that can change a cell's summary changes the key, and the two
// wall-time-only knobs (Workers, StreamChunk) do not.
func TestCellKeyCanonicalisation(t *testing.T) {
	base := NewPlan(42, 300).WithCell("k40", "dgemm:128").WithThresholds(0, 2)
	baseKey := base.CellKey(0)
	if len(baseKey) != 64 || strings.ToLower(baseKey) != baseKey {
		t.Fatalf("CellKey %q is not lowercase sha256 hex", baseKey)
	}

	mutations := map[string]*Plan{
		"device":     NewPlan(42, 300).WithCell("phi", "dgemm:128").WithThresholds(0, 2),
		"kernel":     NewPlan(42, 300).WithCell("k40", "dgemm:256").WithThresholds(0, 2),
		"seed":       NewPlan(43, 300).WithCell("k40", "dgemm:128").WithThresholds(0, 2),
		"strikes":    NewPlan(42, 301).WithCell("k40", "dgemm:128").WithThresholds(0, 2),
		"thresholds": NewPlan(42, 300).WithCell("k40", "dgemm:128").WithThresholds(0, 3),
		"facility":   NewPlan(42, 300).WithCell("k40", "dgemm:128").WithThresholds(0, 2).WithFacility("ISIS"),
		"base_exec":  NewPlan(42, 300).WithCell("k40", "dgemm:128").WithThresholds(0, 2).WithBaseExecSeconds(2),
	}
	seen := map[string]string{baseKey: "base"}
	for what, p := range mutations {
		k := p.CellKey(0)
		if prev, dup := seen[k]; dup {
			t.Errorf("mutating %s collides with %s (key %s)", what, prev, k)
		}
		seen[k] = what
	}

	same := NewPlan(42, 300).WithCell("k40", "dgemm:128").WithThresholds(0, 2).
		WithWorkers(8).WithStreamChunk(17)
	if got := same.CellKey(0); got != baseKey {
		t.Errorf("Workers/StreamChunk changed the key: %s vs %s — they can never change results", got, baseKey)
	}

	// Field separators cannot be forged from inside a name: a device
	// string embedding the canonical encoding of the next field must not
	// collide with the honest spelling.
	a := CellKey(CellSpec{Device: "x\nkernel=1:y", Kernel: "z"}, base.Config(), nil)
	b := CellKey(CellSpec{Device: "x", Kernel: "y"}, base.Config(), nil)
	if a == b {
		t.Errorf("crafted device name collides across field boundaries")
	}
}

// summaryBits flattens every float in a Summary to its bit pattern so two
// summaries can be compared for exact equality, NaN-safely.
func summaryBits(t *testing.T, s *Summary) []uint64 {
	t.Helper()
	if s == nil {
		t.Fatalf("nil summary")
	}
	bits := []uint64{
		uint64(s.Tally.Masked), uint64(s.Tally.SDC),
		uint64(s.Tally.Crash), uint64(s.Tally.Hang),
		math.Float64bits(s.DUEFIT),
	}
	for _, v := range s.SDCFIT {
		bits = append(bits, math.Float64bits(v))
	}
	for _, v := range s.FilteredFraction {
		bits = append(bits, math.Float64bits(v))
	}
	for _, bd := range s.Locality {
		for _, v := range bd.Values {
			bits = append(bits, math.Float64bits(v))
		}
	}
	return bits
}

func requireSameSummary(t *testing.T, label string, got, want *Summary) {
	t.Helper()
	g, w := summaryBits(t, got), summaryBits(t, want)
	if len(g) != len(w) {
		t.Fatalf("%s: summary shape differs: %d vs %d values", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Errorf("%s: summary value %d differs: %#x vs %#x", label, i, g[i], w[i])
		}
	}
}

// TestResumePlanCellBitIdentical cuts a checkpointed cell log at an
// arbitrary byte and asserts that ResumePlanCell reconstructs both the
// log and the summary bit-identically to the uninterrupted run — the
// foundation of the daemon's resume-on-restart contract.
func TestResumePlanCellBitIdentical(t *testing.T) {
	cell := Cell{Dev: k40.New(), Kern: dgemm.New(128)}
	cfg := DefaultConfig(42, 300)
	cfg.StreamChunk = 64
	ts := []float64{0, 2}

	var full bytes.Buffer
	info, err := CellInfo(cell.Dev, cell.Kern, cfg)
	if err != nil {
		t.Fatalf("CellInfo: %v", err)
	}
	chk, err := NewCheckpointSink(&full, info, cfg.Seed)
	if err != nil {
		t.Fatalf("NewCheckpointSink: %v", err)
	}
	_, want, err := RunPlanCell(context.Background(), cell, cfg, ts, chk)
	if err != nil {
		t.Fatalf("RunPlanCell: %v", err)
	}
	if err := chk.Close(); err != nil {
		t.Fatalf("checkpoint close: %v", err)
	}

	for _, cut := range []int{0, 1, full.Len() / 3, full.Len() / 2, full.Len() - 1, full.Len()} {
		truncated := full.Bytes()[:cut]
		var recovered bytes.Buffer
		_, got, err := ResumePlanCell(context.Background(),
			bytes.NewReader(truncated), &recovered, cell, cfg, ts)
		if err != nil {
			t.Fatalf("cut %d: ResumePlanCell: %v", cut, err)
		}
		requireSameSummary(t, "cut "+strconv.Itoa(cut), got, want)
		// The recovered log is event-for-event identical to the
		// uninterrupted one (checkpoint-record placement may differ: the
		// replayed prefix is written in one piece). Equality is checked on
		// the normalised parse→write round trip — hex-float output is
		// bit-exact and NaN-safe, where DeepEqual on NaN reads is not.
		if got, want := normalisedLog(t, cut, recovered.String()), normalisedLog(t, cut, full.String()); got != want {
			t.Errorf("cut %d: recovered log events differ from the uninterrupted log", cut)
		}
	}

	// A log for a different seed must be rejected, not resumed
	// into a silently wrong summary.
	otherCfg := cfg
	otherCfg.Seed = 7
	var w bytes.Buffer
	if _, _, err := ResumePlanCell(context.Background(),
		bytes.NewReader(full.Bytes()), &w, cell, otherCfg, ts); err == nil {
		t.Errorf("resume under a different seed did not error")
	}
}

// normalisedLog parses a checkpoint log and re-serialises it, yielding a
// canonical event-stream form independent of checkpoint placement.
func normalisedLog(t *testing.T, cut int, raw string) string {
	t.Helper()
	l, err := logdata.Parse(strings.NewReader(raw))
	if err != nil {
		t.Fatalf("cut %d: log unparseable: %v", cut, err)
	}
	var b bytes.Buffer
	if err := logdata.Write(&b, l); err != nil {
		t.Fatalf("cut %d: log unwritable: %v", cut, err)
	}
	return b.String()
}

// TestResumeSurvivesImmediateInterruption pins the resume path's
// durability invariant: even when the resumed run is interrupted before
// a single tail chunk completes, the rewritten log still carries a
// checkpoint covering the salvaged prefix — progress can never regress
// across repeated short-lived interruptions.
func TestResumeSurvivesImmediateInterruption(t *testing.T) {
	cell := Cell{Dev: k40.New(), Kern: dgemm.New(128)}
	cfg := DefaultConfig(42, 160)
	cfg.StreamChunk = 32
	ts := []float64{0, 2}

	var full bytes.Buffer
	info, err := CellInfo(cell.Dev, cell.Kern, cfg)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := NewCheckpointSink(&full, info, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunPlanCell(context.Background(), cell, cfg, ts, chk); err != nil {
		t.Fatal(err)
	}
	if err := chk.Close(); err != nil {
		t.Fatal(err)
	}

	truncated := full.Bytes()[:2*full.Len()/3]
	before, err := logdata.ParseResume(bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if before.Next == 0 {
		t.Fatalf("test cut salvaged nothing; pick a later cut")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the resume is interrupted before any tail strike runs
	var rewritten bytes.Buffer
	if _, _, err := ResumePlanCell(ctx, bytes.NewReader(truncated), &rewritten, cell, cfg, ts); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted resume returned %v, want context.Canceled", err)
	}
	after, err := logdata.ParseResume(bytes.NewReader(rewritten.Bytes()))
	if err != nil {
		t.Fatalf("rewritten log unparseable: %v", err)
	}
	if after.Next < before.Next {
		t.Errorf("rewritten log resumes at %d, older log at %d: salvaged progress was lost", after.Next, before.Next)
	}
	if after.Masked != before.Masked {
		t.Errorf("rewritten log masked count %d, want %d", after.Masked, before.Masked)
	}
}
