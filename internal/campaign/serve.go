package campaign

// This file is the serving-layer surface: the per-cell execution
// primitives a long-lived campaign service composes — summary
// accumulation as a Sink, one-cell execution with attachable sinks, and
// checkpointed resume. StreamRunner and RecoverLog are thin arrangements
// of the same primitives, so a daemon that interleaves caching and
// checkpointing still runs the exact engine path the in-process runners
// are pinned against.

import (
	"context"
	"fmt"
	"io"

	"radcrit/internal/arch"
	"radcrit/internal/fault"
	"radcrit/internal/grid"
	"radcrit/internal/injector"
	"radcrit/internal/kernels"
	"radcrit/internal/logdata"
	"radcrit/internal/metrics"
)

// SummaryAccumulator folds a streaming outcome sequence into a Summary —
// the reducer stack StreamRunner attaches per cell, exported as a Sink so
// serving layers can combine it with their own sinks (checkpoint logs,
// progress relays) on one engine pass. It additionally replays salvaged
// checkpoint-log events, which is what makes a resumed cell's summary
// bit-identical to an uninterrupted run: the prefix comes from the log's
// exact hex-float record, the tail from the deterministic per-index RNG
// splits.
//
// Not safe for concurrent use; the engine's in-order consume loop is a
// single goroutine (Sink contract).
type SummaryAccumulator struct {
	ts    []float64
	red   *streamReducers
	sinks []Sink
}

// NewSummaryAccumulator returns an empty accumulator summarising under
// the given thresholds (a plan's EffectiveThresholds).
func NewSummaryAccumulator(thresholds []float64) *SummaryAccumulator {
	ts := append([]float64(nil), thresholds...)
	red := newStreamReducers(ts)
	return &SummaryAccumulator{ts: ts, red: red, sinks: red.sinks()}
}

// Consume implements Sink.
func (a *SummaryAccumulator) Consume(i int, out injector.Outcome) {
	for _, s := range a.sinks {
		s.Consume(i, out)
	}
}

// AddMasked records n masked executions without per-strike payloads — the
// form a checkpoint log carries them in (they are a count in the #CHK
// record, not events). Replay-only; the live path counts masked outcomes
// through Consume.
func (a *SummaryAccumulator) AddMasked(n int) {
	a.red.tally.Tally.Masked += n
}

// ReplayEvent feeds one salvaged checkpoint-log event into the reducers,
// reconstructing the outcome exactly as logdata.Log.Reports does: the
// logged hex floats round-trip bit-exactly and RelErrPct is recomputed
// with the same function the live comparator uses, so every summary
// statistic derived from a replayed prefix matches the live run bit for
// bit. dims is the cell's output shape (the log header's dims). The
// injection scope is not reconstructed — no reducer reads it.
func (a *SummaryAccumulator) ReplayEvent(ev logdata.Event, dims grid.Dims) {
	out := injector.Outcome{Class: ev.Class}
	if r, ok := fault.ResourceFromString(ev.Resource); ok {
		out.Resource = r
	}
	if ev.Class == fault.SDC {
		out.Report = &metrics.Report{
			Dims:          dims,
			TotalElements: dims.Len(),
			Mismatches:    ev.Mismatches,
		}
	}
	a.Consume(ev.Exec, out)
}

// Consumed returns the number of strikes folded in so far (replayed and
// live), the prefix length a cancelled cell's summary covers.
func (a *SummaryAccumulator) Consumed() int { return a.red.consumed() }

// Summary renders the accumulated state under the cell's exposure. Valid
// on partial (cancelled) state too, under a prefix-rescaled info.
func (a *SummaryAccumulator) Summary(info StreamInfo) *Summary {
	return a.red.summary(a.ts, info)
}

// RunPlanCell executes one resolved plan cell through the streaming
// engine and returns its StreamInfo and Summary — StreamRunner's per-cell
// body, exported for serving layers. The extra sinks observe the same
// in-order outcome stream after the accumulator (so a CheckpointSink's
// chunk flush always covers what the summary has consumed).
//
// On cancellation the returned info is rescaled to the chunk-aligned
// prefix actually consumed and the partial summary over that prefix is
// returned alongside ctx.Err(); on any other error the summary is nil.
//
// When cfg.Adaptive is set the cell may stop early: the stop rule is
// evaluated at every chunk boundary (the stream chunk is forced to the
// look spacing), and a rule-triggered stop is a COMPLETION, not an error
// — the info and summary come back rescaled to the stop point with a nil
// error, and an #EPOCH record lands in any EpochRecorder among the extra
// sinks. Callers distinguish "stopped early" from "ran the budget" by
// Info.Strikes, never by the error.
func RunPlanCell(ctx context.Context, cell Cell, cfg Config, thresholds []float64, extra ...Sink) (StreamInfo, *Summary, error) {
	cfg, rule, adaptive := adaptiveConfig(cfg)
	acc := NewSummaryAccumulator(thresholds)
	sinks := make([]Sink, 0, len(extra)+2)
	sinks = append(sinks, acc)
	sinks = append(sinks, extra...)
	runCtx := ctx
	var es *earlyStopSink
	if adaptive {
		var cancel context.CancelCauseFunc
		runCtx, cancel = context.WithCancelCause(ctx)
		defer cancel(nil)
		es = &earlyStopSink{rule: rule, cancel: cancel}
		sinks = append(sinks, es) // last: checkpoints flush before the stop
	}
	info, err := RunStreamingCtx(runCtx, cell.Dev, cell.Kern, cfg, sinks...)
	if adaptive && es.stopped && ctx.Err() == nil {
		// The stop rule cancelled, not the caller: the cell is complete at
		// its chunk-aligned stop point.
		err = nil
	}
	if err != nil {
		if isCancellation(err) {
			info = prefixInfo(info, acc.Consumed())
			return info, acc.Summary(info), err
		}
		return info, nil, err
	}
	if adaptive {
		recordEpoch(sinks, es.mark(1, cfg.Strikes, acc.Consumed()))
		info = prefixInfo(info, acc.Consumed())
	}
	return info, acc.Summary(info), nil
}

// ResumePlanCell completes a cell whose previous execution was
// interrupted after writing the (possibly truncated) checkpoint log in
// truncated: the salvaged prefix — everything up to the last complete
// #CHK record — is replayed into the summary and into a fresh checkpoint
// log at w, and only the uncovered tail re-runs. The final summary is
// bit-identical to an uninterrupted run's (per-index RNG splits reproduce
// the tail; hex-float logging reproduces the prefix), and the log written
// to w is event-for-event what an uninterrupted run would have written —
// so a resume interrupted again stays resumable, indefinitely.
//
// The log must describe this cell and seed; a mismatch is an error rather
// than a silently wrong summary. On cancellation mid-tail the returned
// info/summary cover the consumed prefix (like RunPlanCell) and w holds a
// resumable log without its #END trailer.
func ResumePlanCell(ctx context.Context, truncated io.Reader, w io.Writer, cell Cell, cfg Config, thresholds []float64, extra ...Sink) (StreamInfo, *Summary, error) {
	acc := NewSummaryAccumulator(thresholds)
	info, err := resumeStreaming(ctx, w, truncated, cell.Dev, cell.Kern, cfg, acc, extra)
	if err != nil {
		if isCancellation(err) {
			info = prefixInfo(info, acc.Consumed())
			return info, acc.Summary(info), err
		}
		return info, nil, err
	}
	return info, acc.Summary(info), nil
}

// resumeStreaming is the shared core of RecoverLog and ResumePlanCell:
// salvage the truncated log, validate it describes (dev, kern, cfg),
// replay the prefix into a fresh checkpoint log at w (and into acc, when
// summarising), then re-run the uncovered tail with acc, the extra sinks
// and the new checkpoint log attached. The #END trailer is written only
// on full completion, so an interrupted resume leaves w resumable.
// Under an adaptive cfg the salvaged prefix is re-judged exactly as the
// original run judged it: the replayed events seed the stop rule's SDC
// count, salvaged #EPOCH marks are re-emitted at their original positions
// (the parsers' count-consistency checks demand it), the salvage point
// itself is evaluated as a look — a run whose stop decision was made but
// whose log tore before recording it stops again without re-running
// anything — and the re-run tail evaluates live at every boundary. The
// decisions are pure functions of (SDC, trials), so the resumed cell
// stops where the uninterrupted one did.
func resumeStreaming(ctx context.Context, w io.Writer, truncated io.Reader, dev arch.Device, kern kernels.Kernel, cfg Config, acc *SummaryAccumulator, extra []Sink) (StreamInfo, error) {
	cfg, rule, adaptive := adaptiveConfig(cfg)
	res, err := logdata.ParseResume(truncated)
	if err != nil {
		return StreamInfo{}, err
	}
	info, err := CellInfo(dev, kern, cfg)
	if err != nil {
		return StreamInfo{}, err
	}
	// Header fields are serialised space-escaped and the escaping is lossy
	// (logdata.HeaderField), so the live metadata is escaped before the
	// comparison — the parsed side cannot be unescaped.
	if res.Log.Device != "" &&
		(res.Log.Device != logdata.HeaderField(info.Device) ||
			res.Log.Kernel != logdata.HeaderField(info.Kernel) ||
			res.Log.Input != logdata.HeaderField(info.Input)) {
		return info, fmt.Errorf("campaign: log describes %s/%s/%s, not %s/%s/%s",
			res.Log.Device, res.Log.Kernel, res.Log.Input, info.Device, info.Kernel, info.Input)
	}
	if res.Log.Device != "" && res.Log.Seed != cfg.Seed {
		return info, fmt.Errorf("campaign: log was written under seed %d, not %d — the tail would not match",
			res.Log.Seed, cfg.Seed)
	}
	sink, err := NewCheckpointSink(w, info, cfg.Seed)
	if err != nil {
		return info, err
	}
	var es *earlyStopSink
	if adaptive {
		es = &earlyStopSink{rule: rule}
	}
	sink.sw.AddMasked(res.Masked)
	if acc != nil {
		acc.AddMasked(res.Masked)
	}
	// Replay events with the salvaged epoch marks interleaved where they
	// originally stood: a mark at consumed c precedes the first event at
	// strike index >= c, so every re-emitted #EPOCH still agrees with the
	// cumulative SDC count at its position — the consistency both parsers
	// enforce.
	marks := res.Log.Epochs
	for _, ev := range res.Log.Events {
		for len(marks) > 0 && marks[0].Consumed <= ev.Exec {
			if err := sink.RecordEpoch(marks[0]); err != nil {
				return info, err
			}
			marks = marks[1:]
		}
		if err := sink.sw.WriteEvent(ev); err != nil {
			return info, err
		}
		if acc != nil {
			acc.ReplayEvent(ev, info.Profile.OutputDims)
		}
		if es != nil {
			es.seed(ev)
		}
	}
	for _, m := range marks {
		if err := sink.RecordEpoch(m); err != nil {
			return info, err
		}
	}
	epoch := 1
	if n := len(res.Log.Epochs); n > 0 {
		epoch = res.Log.Epochs[n-1].Epoch + 1
	}
	if !res.Complete {
		// Flush a checkpoint covering the replayed prefix before any tail
		// strike runs: the new log is now durable to at least the point
		// the old one reached, so an interruption during the tail — or
		// even before its first chunk — can never lose salvaged progress.
		if err := sink.sw.Checkpoint(res.Next); err != nil {
			return info, err
		}
		if es != nil {
			// The salvage point is a look: a prefix that already satisfies
			// the rule stops here, re-running nothing.
			es.evaluate(res.Next)
		}
		if es == nil || !es.stopped {
			runCtx := ctx
			if es != nil {
				var cancel context.CancelCauseFunc
				runCtx, cancel = context.WithCancelCause(ctx)
				defer cancel(nil)
				es.cancel = cancel
			}
			sinks := make([]Sink, 0, len(extra)+3)
			if acc != nil {
				sinks = append(sinks, acc)
			}
			sinks = append(sinks, extra...)
			sinks = append(sinks, sink)
			if es != nil {
				sinks = append(sinks, es) // last: checkpoints flush first
			}
			if _, err := RunStreamingFromCtx(runCtx, dev, kern, cfg, res.Next, sinks...); err != nil {
				if !(es != nil && es.stopped && ctx.Err() == nil) {
					return info, err
				}
			}
		}
		if es != nil {
			consumed := cfg.Strikes
			if es.stopped {
				consumed = es.stopAt
			}
			if err := sink.RecordEpoch(es.mark(epoch, cfg.Strikes, consumed)); err != nil {
				return info, err
			}
		}
	}
	if adaptive {
		// Rescale to the strikes the cell actually holds, so the caller's
		// summary rates are true over the executed prefix: a complete log
		// carries its own total; an early-stopped tail its stop point.
		consumed := cfg.Strikes
		if res.Complete {
			consumed = res.Masked + len(res.Log.Events)
		} else if es.stopped {
			consumed = es.stopAt
		}
		info = prefixInfo(info, consumed)
	}
	return info, sink.Close()
}
