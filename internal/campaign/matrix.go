package campaign

import (
	"sync"

	"radcrit/internal/arch"
	"radcrit/internal/kernels"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/kernels/lavamd"
)

// Cell is one (device, kernel) experiment of a campaign matrix.
type Cell struct {
	Dev  arch.Device
	Kern kernels.Kernel
}

// RunMatrix evaluates every cell under cfg concurrently and returns the
// results in cell order. Each cell goes through Run, so concurrent
// requests for the same memo key are single-flighted: a cell shared by
// several figures (or listed twice) is computed exactly once, and cells
// already memoised return instantly. Cell-level concurrency composes with
// the per-cell strike pool — short cells drain while long cells still
// churn, keeping every core busy across the whole matrix.
func RunMatrix(cells []Cell, cfg Config) []*Result {
	results := make([]*Result, len(cells))
	var wg sync.WaitGroup
	wg.Add(len(cells))
	for i := range cells {
		go func(i int) {
			defer wg.Done()
			results[i] = Run(cells[i].Dev, cells[i].Kern, cfg)
		}(i)
	}
	wg.Wait()
	return results
}

// DGEMMCells returns the device's DGEMM input-size sweep as matrix cells.
func DGEMMCells(dev arch.Device, s Scale) []Cell {
	var cells []Cell
	for _, n := range DGEMMSizes(s, dev) {
		cells = append(cells, Cell{Dev: dev, Kern: dgemm.New(n)})
	}
	return cells
}

// LavaMDCells returns the device's LavaMD input-size sweep as matrix cells.
func LavaMDCells(dev arch.Device, s Scale) []Cell {
	var cells []Cell
	for _, g := range LavaMDSizes(s, dev) {
		cells = append(cells, Cell{Dev: dev, Kern: lavamd.New(g)})
	}
	return cells
}

// DeviceCells returns every standard experiment cell of one device: the
// DGEMM and LavaMD sweeps plus HotSpot and CLAMR at the scale's size.
func DeviceCells(dev arch.Device, s Scale) []Cell {
	cells := DGEMMCells(dev, s)
	cells = append(cells, LavaMDCells(dev, s)...)
	cells = append(cells,
		Cell{Dev: dev, Kern: HotSpotKernel(s)},
		Cell{Dev: dev, Kern: CLAMRKernel(s)})
	return cells
}

// AllCells returns the full device x kernel x input matrix of the paper's
// evaluation at the given scale, in the §V presentation order (per device:
// DGEMM sweep, LavaMD sweep, HotSpot, CLAMR).
func AllCells(s Scale) []Cell {
	var cells []Cell
	for _, dev := range Devices() {
		cells = append(cells, DeviceCells(dev, s)...)
	}
	return cells
}
