package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"radcrit/internal/arch"
	"radcrit/internal/beam"
	"radcrit/internal/metrics"
	"radcrit/internal/registry"
)

// CellSpec names one experiment cell declaratively: a registered device
// ("k40", "phi") and a kernel spec ("dgemm:1024", "lavamd:19",
// "hotspot:1024x400", "clamr:512x600"). Specs are resolved through
// internal/registry, so third-party registrations are addressable from a
// plan exactly like the built-ins.
type CellSpec struct {
	Device string `json:"device"`
	Kernel string `json:"kernel"`
}

// Plan is a declarative campaign: the full experiment matrix plus the
// statistical configuration, as a plain value that validates, serialises
// to JSON and runs on any Runner. A plan is the shareable, resumable
// artifact the paper's evaluation matrix wants to be — "run these cells
// under this seed" as data rather than as five hand-rolled flag switches.
//
// The zero value is not runnable; build plans with NewPlan or LoadPlan
// and check Validate before spending compute on them.
type Plan struct {
	// Name optionally labels the plan in logs and reports.
	Name string `json:"name,omitempty"`
	// Seed is the campaign's reproducibility root (Config.Seed).
	Seed uint64 `json:"seed"`
	// Strikes is the per-cell particle-strike budget; it must be positive.
	Strikes int `json:"strikes"`
	// Cells is the experiment matrix, evaluated in order.
	Cells []CellSpec `json:"cells"`
	// Thresholds are the relative-error filters (in percent) each cell is
	// summarised under; <= 0 keeps every mismatch. Empty selects the
	// default pair {0, 2}: unfiltered and the paper's conservative filter.
	Thresholds []float64 `json:"thresholds,omitempty"`
	// Workers sizes each cell's strike pool (0 = GOMAXPROCS). Like
	// Config.Workers it can never change results, only wall time.
	Workers int `json:"workers,omitempty"`
	// StreamChunk sizes the streaming engine's execution window
	// (0 = DefaultStreamChunk); it also sets cancellation granularity.
	StreamChunk int `json:"stream_chunk,omitempty"`
	// BaseExecSeconds scales a profile's RelRuntime into wall seconds
	// (0 = the default 1.0).
	BaseExecSeconds float64 `json:"base_exec_seconds,omitempty"`
	// Facility names the neutron source ("LANSCE" or "ISIS"; empty =
	// LANSCE).
	Facility string `json:"facility,omitempty"`
	// Adaptive, when present, enables sequential early stopping: cells end
	// as soon as their SDC confidence interval reaches the target
	// half-width, and AdaptiveRunner reallocates the freed strikes. Absent
	// (nil) means every cell runs its full budget, byte-identical to plans
	// predating this field.
	Adaptive *AdaptiveSpec `json:"adaptive,omitempty"`
}

// NewPlan starts a fluent plan under the given seed and strike budget:
//
//	p := campaign.NewPlan(42, 300).
//		WithCell("k40", "dgemm:1024").
//		WithCell("phi", "dgemm:1024").
//		WithThresholds(0, 2)
func NewPlan(seed uint64, strikes int) *Plan {
	return &Plan{Seed: seed, Strikes: strikes}
}

// Named labels the plan.
func (p *Plan) Named(name string) *Plan {
	p.Name = name
	return p
}

// WithCell appends one (device, kernel) cell.
func (p *Plan) WithCell(device, kernelSpec string) *Plan {
	p.Cells = append(p.Cells, CellSpec{Device: device, Kernel: kernelSpec})
	return p
}

// WithKernelOnDevices appends one cell per device for a single kernel
// spec — the cross-architecture comparison shape of the paper's figures.
func (p *Plan) WithKernelOnDevices(kernelSpec string, devices ...string) *Plan {
	for _, d := range devices {
		p.WithCell(d, kernelSpec)
	}
	return p
}

// WithThresholds sets the summary filter thresholds (percent).
func (p *Plan) WithThresholds(ts ...float64) *Plan {
	p.Thresholds = append([]float64(nil), ts...)
	return p
}

// WithWorkers sets the per-cell worker-pool size.
func (p *Plan) WithWorkers(n int) *Plan {
	p.Workers = n
	return p
}

// WithStreamChunk sets the streaming window (and cancellation grain).
func (p *Plan) WithStreamChunk(n int) *Plan {
	p.StreamChunk = n
	return p
}

// WithFacility selects the neutron source by name.
func (p *Plan) WithFacility(name string) *Plan {
	p.Facility = name
	return p
}

// WithBaseExecSeconds sets the wall-seconds scale of one execution.
func (p *Plan) WithBaseExecSeconds(s float64) *Plan {
	p.BaseExecSeconds = s
	return p
}

// WithAdaptive enables sequential early stopping under the given spec.
func (p *Plan) WithAdaptive(a AdaptiveSpec) *Plan {
	p.Adaptive = &a
	return p
}

// facilities are the neutron sources addressable from a plan.
var facilities = map[string]beam.Facility{
	"":       beam.LANSCE,
	"LANSCE": beam.LANSCE,
	"ISIS":   beam.ISIS,
}

// FacilityByName resolves a plan's facility name.
func FacilityByName(name string) (beam.Facility, error) {
	f, ok := facilities[name]
	if !ok {
		return beam.Facility{}, fmt.Errorf("unknown facility %q (known: LANSCE, ISIS)", name)
	}
	return f, nil
}

// Validate checks the plan without building any kernel state: unknown
// device or kernel names, malformed or out-of-range kernel params (what
// used to surface as constructor panics deep inside a run), a
// non-positive strike budget, and malformed numeric fields all come back
// as errors naming the offending cell. A valid plan is safe to hand to
// any Runner.
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("plan: nil")
	}
	if p.Strikes <= 0 {
		return fmt.Errorf("plan %q: strikes must be positive, got %d", p.Name, p.Strikes)
	}
	if len(p.Cells) == 0 {
		return fmt.Errorf("plan %q: no cells", p.Name)
	}
	if p.Workers < 0 {
		return fmt.Errorf("plan %q: negative workers %d", p.Name, p.Workers)
	}
	if p.StreamChunk < 0 {
		return fmt.Errorf("plan %q: negative stream_chunk %d", p.Name, p.StreamChunk)
	}
	if p.BaseExecSeconds < 0 || math.IsNaN(p.BaseExecSeconds) || math.IsInf(p.BaseExecSeconds, 0) {
		return fmt.Errorf("plan %q: invalid base_exec_seconds %v", p.Name, p.BaseExecSeconds)
	}
	for _, t := range p.Thresholds {
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("plan %q: invalid threshold %v", p.Name, t)
		}
	}
	if _, err := FacilityByName(p.Facility); err != nil {
		return fmt.Errorf("plan %q: %v", p.Name, err)
	}
	if p.Adaptive != nil {
		if err := p.Adaptive.validate(); err != nil {
			return fmt.Errorf("plan %q: adaptive: %v", p.Name, err)
		}
	}
	for i, c := range p.Cells {
		if err := registry.ValidateDevice(c.Device); err != nil {
			return fmt.Errorf("plan %q: cell %d: %w", p.Name, i, err)
		}
		if err := registry.ValidateKernel(c.Kernel); err != nil {
			return fmt.Errorf("plan %q: cell %d: %w", p.Name, i, err)
		}
	}
	return nil
}

// Config converts the plan's statistical fields into the engine Config.
// It assumes a validated plan (an unknown facility falls back to LANSCE).
func (p *Plan) Config() Config {
	fac, err := FacilityByName(p.Facility)
	if err != nil {
		fac = beam.LANSCE
	}
	base := p.BaseExecSeconds
	if base == 0 {
		base = 1.0
	}
	cfg := Config{
		Seed:            p.Seed,
		Strikes:         p.Strikes,
		BaseExecSeconds: base,
		Facility:        fac,
		Workers:         p.Workers,
		StreamChunk:     p.StreamChunk,
	}
	if p.Adaptive != nil {
		a := *p.Adaptive
		cfg.Adaptive = &a
	}
	return cfg
}

// EffectiveThresholds returns the thresholds a Runner summarises under:
// the plan's own, or the default {0, DefaultThresholdPct} pair.
func (p *Plan) EffectiveThresholds() []float64 {
	if len(p.Thresholds) > 0 {
		return append([]float64(nil), p.Thresholds...)
	}
	return []float64{0, metrics.DefaultThresholdPct}
}

// Build resolves every cell spec into a constructed (device, kernel)
// pair, in plan order. This is where golden state is paid for; Validate
// first to fail fast. Device models are constructed once per distinct
// name and shared across the plan's cells.
func (p *Plan) Build() ([]Cell, error) {
	return p.BuildCtx(context.Background())
}

// BuildCtx is Build under a context: construction — the expensive phase
// for iterative kernels, whose golden simulations run here — is abandoned
// between cells once ctx is cancelled, returning ctx.Err().
func (p *Plan) BuildCtx(ctx context.Context) ([]Cell, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	devs := map[string]arch.Device{}
	cells := make([]Cell, 0, len(p.Cells))
	for i, c := range p.Cells {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dev, ok := devs[c.Device]
		if !ok {
			var err error
			if dev, err = registry.NewDevice(c.Device); err != nil {
				return nil, fmt.Errorf("plan %q: cell %d: %w", p.Name, i, err)
			}
			devs[c.Device] = dev
		}
		kern, err := registry.NewKernel(c.Kernel)
		if err != nil {
			return nil, fmt.Errorf("plan %q: cell %d: %w", p.Name, i, err)
		}
		cells = append(cells, Cell{Dev: dev, Kern: kern})
	}
	return cells, nil
}

// BuildCell resolves one cell spec in isolation — the form serving layers
// that shard a plan cell-by-cell use, constructing exactly the cell a
// work item names instead of the whole plan's matrix. The spec is
// validated first, so a malformed or unregistered cell comes back as an
// error rather than a construction panic.
func BuildCell(spec CellSpec) (Cell, error) {
	if err := registry.ValidateDevice(spec.Device); err != nil {
		return Cell{}, err
	}
	if err := registry.ValidateKernel(spec.Kernel); err != nil {
		return Cell{}, err
	}
	dev, err := registry.NewDevice(spec.Device)
	if err != nil {
		return Cell{}, err
	}
	kern, err := registry.NewKernel(spec.Kernel)
	if err != nil {
		return Cell{}, err
	}
	return Cell{Dev: dev, Kern: kern}, nil
}

// planJSON mirrors Plan for the custom (un)marshallers: the alias drops
// the methods, avoiding recursion while keeping one set of field tags.
type planJSON Plan

// MarshalJSON implements json.Marshaler.
func (p *Plan) MarshalJSON() ([]byte, error) {
	return json.Marshal((*planJSON)(p))
}

// UnmarshalJSON implements json.Unmarshaler strictly: unknown fields are
// an error, so a typo in a hand-written plan ("strike" for "strikes")
// fails loudly instead of silently running a default campaign.
func (p *Plan) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var a planJSON
	if err := dec.Decode(&a); err != nil {
		return err
	}
	if len(a.Thresholds) == 0 {
		// Normalise "thresholds": [] to absent so save/load round-trips
		// (omitempty drops the empty slice on the way out).
		a.Thresholds = nil
	}
	*p = Plan(a)
	return nil
}

// LoadPlan reads and validates a JSON plan. Trailing garbage after the
// plan object is rejected.
func LoadPlan(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("plan: trailing data after plan object")
	}
	p := &Plan{}
	if err := p.UnmarshalJSON(raw); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// SavePlan validates p and writes it as indented JSON, the on-disk form
// LoadPlan reads back. Round-tripping is lossless: LoadPlan(SavePlan(p))
// yields a plan equal to p.
func SavePlan(w io.Writer, p *Plan) error {
	if err := p.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
