// Package phi provides the behavioural model of the Intel Xeon Phi 3120A
// (Knights Corner) coprocessor used in the paper's beam campaigns.
//
// Parameter provenance (paper §IV-A and Intel's KNC system software guide):
//
//   - 22 nm Intel Tri-Gate (3-D) transistors: ~10x lower per-bit neutron
//     sensitivity than planar devices [28], modelled as a 0.1 storage and
//     0.15 logic sensitivity relative to the K40's planar baseline.
//   - 57 in-order physical cores with 4 hardware threads each and 32
//     512-bit vector registers per core (≈530 KB of architectural vector
//     state, unprotected).
//   - 64 KB L1 per core and 512 KB private-but-coherent L2 per core
//     (3648 KB / 29184 KB totals) on a bidirectional ring; 64-byte lines.
//     The large coherent L2 keeps (possibly corrupted) data resident far
//     longer than the K40's small L2, so one upset poisons several
//     distinct cache lines before eviction — the paper's explanation for
//     the Phi's higher incorrect-element counts (§V-E).
//   - Software scheduling by an embedded Linux OS whose run queues live in
//     DRAM (not irradiated): no strain growth with thread count
//     (§V-A (1)), and a scheduler strike that is not masked usually
//     crashes or hangs the card rather than silently mis-scheduling.
//   - No separate transcendental unit: SFU area is zero and vector-unit
//     strikes corrupt up to 8 adjacent 64-bit lanes.
//
// Datapath strikes use a high-magnitude flip distribution (exponent and
// high-mantissa biased): results transit wide vector registers where they
// stay exposed for whole loop iterations, and the paper observes that
// "almost all the corrupted elements are extremely different from the
// expected value" for DGEMM on the Phi (§V-A). Cached data are mostly
// output blocks resident in the private L2 (CacheOutputBias 0.75).
package phi

import (
	"radcrit/internal/arch"
	"radcrit/internal/fault"
	"radcrit/internal/floatbits"
)

// New returns the Xeon Phi 3120A device model.
func New() *arch.Model {
	return &arch.Model{
		DeviceName: "Intel Xeon Phi 3120A (Knights Corner)",
		Short:      "XeonPhi",
		TechNode:   "22nm Tri-Gate (Intel)",

		StorageSensitivity: 0.04,
		LogicSensitivity:   0.12,

		NumCores:           57,
		HWThreadsPerCore:   4,
		RegisterFileKB:     530, // 57 cores x 4 threads x 32 x 64B vector regs
		SharedMemKBPerCore: 0,
		L1KBPerCore:        64,
		L2KBTotal:          29184,
		CacheLineBytes:     64,
		VectorWidthBits:    512,

		ECCRegisterFile:   false,
		ECCEscapeProb:     0,
		HardwareScheduler: false,

		FPUAreaAU:       520,
		SFUAreaAU:       0,
		VectorAreaAU:    640,
		SchedulerAreaAU: 200,
		DispatchAreaAU:  520,
		ControlAreaAU:   640,
		ICacheAreaAU:    360,

		ControlFloor:           0.50,
		L2SharingDegree:        4.5,
		SchedStrainAt64K:       0.80,
		SchedStrainExponent:    1.0,
		RFResidencyPerKWaiting: 0,
		CacheOutputBias:        0.75,

		DatapathFlip: arch.FlipDist{
			Specs: []fault.FlipSpec{
				{Field: floatbits.Exponent, Bits: 1},
				{Field: floatbits.HighMantissa, Bits: 1},
				{Field: floatbits.AnyField, Bits: 1},
				{Field: floatbits.Sign, Bits: 1},
			},
			Weights: []float64{0.40, 0.25, 0.25, 0.10},
		},
		StorageFlip: arch.FlipDist{
			Specs: []fault.FlipSpec{
				{Field: floatbits.AnyField, Bits: 1},
				{Field: floatbits.AnyField, Bits: 2},
			},
			Weights: []float64{0.85, 0.15},
		},
		RFEscapeFlip: arch.FlipDist{
			Specs: []fault.FlipSpec{
				{Field: floatbits.AnyField, Bits: 1},
			},
			Weights: []float64{1},
		},

		FPUScope: arch.ScopeOutputWord,
	}
}
