// Calibration tests pinning the Xeon Phi model to the paper's §V shape
// targets at the analytic (expectation) level.
package phi

import (
	"testing"

	"radcrit/internal/k40"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/kernels/lavamd"
)

func TestValidModel(t *testing.T) {
	m := New()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.ShortName() != "XeonPhi" {
		t.Fatal("short name")
	}
	if m.HardwareScheduler {
		t.Fatal("the Phi schedules in software")
	}
	if m.VectorWidthBits != 512 {
		t.Fatal("KNC vector registers are 512-bit")
	}
	if m.SFUAreaAU != 0 {
		t.Fatal("the Phi has no dedicated transcendental unit in this model")
	}
}

func TestInventoryMatchesPaper(t *testing.T) {
	m := New()
	if m.NumCores != 57 || m.HWThreadsPerCore != 4 {
		t.Fatal("core inventory wrong (57 cores x 4 threads, §IV-A)")
	}
	if m.L1KBPerCore != 64 || m.L2KBTotal != 29184 {
		t.Fatal("cache inventory wrong (64 KB L1/core, 29184 KB L2 total)")
	}
}

func TestTriGateLowerSensitivity(t *testing.T) {
	// §IV-A / [28]: 3-D transistors show ~10x lower per-bit sensitivity.
	phiM := New()
	k40M := k40.New()
	if phiM.StorageSensitivity > k40M.StorageSensitivity/5 {
		t.Fatalf("Phi storage sensitivity %v not well below K40's %v",
			phiM.StorageSensitivity, k40M.StorageSensitivity)
	}
}

// §V-A: Phi DGEMM FIT grows only ~1.8x across the input sweep, and the
// SDC:DUE ratio stays ~4x "independently on the input".
func TestDGEMMScalingShape(t *testing.T) {
	dev := New()
	sizes := []int{1024, 2048, 4096, 8192}
	var fits, ratios []float64
	for _, n := range sizes {
		p := dgemm.New(n).Profile(dev)
		_, sdc, crash, hang := dev.Model().ExpectedRates(p)
		fits = append(fits, sdc*dev.SensitiveArea(p))
		ratios = append(ratios, sdc/(crash+hang))
	}
	growth := fits[3] / fits[0]
	if growth < 1.3 || growth > 3 {
		t.Fatalf("Phi DGEMM FIT growth %.2fx outside the ~1.8x band", growth)
	}
	for i, r := range ratios {
		if r < 3 || r > 7 {
			t.Fatalf("Phi DGEMM SDC:DUE at size %d = %.2f outside the ~4 flat band", sizes[i], r)
		}
	}
	// Flatness: max/min within 1.6x.
	if ratios[0]/ratios[3] > 1.6 || ratios[3]/ratios[0] > 1.6 {
		t.Fatalf("Phi DGEMM ratio not flat: %v", ratios)
	}
}

// §V: Phi LavaMD SDC:DUE grows with input size (3x -> 12x in the paper).
func TestLavaMDRatioGrows(t *testing.T) {
	dev := New()
	var ratios []float64
	for _, g := range []int{13, 23} {
		p := lavamd.New(g).Profile(dev)
		_, sdc, crash, hang := dev.Model().ExpectedRates(p)
		ratios = append(ratios, sdc/(crash+hang))
	}
	if ratios[1] <= ratios[0]*1.3 {
		t.Fatalf("Phi LavaMD ratio should grow markedly with input: %v", ratios)
	}
	if ratios[0] < 2 || ratios[0] > 5 {
		t.Fatalf("Phi LavaMD small-input ratio %.2f outside the ~3 band", ratios[0])
	}
}

// Fig. 3: even with K40-favouring 2% tolerance applied, the K40's DGEMM
// error rate sits well above the Phi's (different technology nodes).
func TestDGEMMFITBelowK40(t *testing.T) {
	phiDev := New()
	k40Dev := k40.New()
	for _, n := range []int{1024, 4096} {
		pPhi := dgemm.New(n).Profile(phiDev)
		pK40 := dgemm.New(n).Profile(k40Dev)
		_, sdcPhi, _, _ := phiDev.Model().ExpectedRates(pPhi)
		_, sdcK40, _, _ := k40Dev.Model().ExpectedRates(pK40)
		fitPhi := sdcPhi * phiDev.SensitiveArea(pPhi)
		fitK40 := sdcK40 * k40Dev.SensitiveArea(pK40)
		if fitK40 < 2*fitPhi {
			t.Fatalf("size %d: K40 FIT %.0f not well above Phi FIT %.0f", n, fitK40, fitPhi)
		}
	}
}
