// Package grid provides dense 1-, 2- and 3-dimensional float64 arrays with
// the index arithmetic used by every kernel output in the suite. HPC output
// data "is common ... to be structured as two or three-dimensional arrays"
// (paper §III); the spatial-locality metric needs coordinates, so outputs
// carry their shape rather than being flat slices.
package grid

import "fmt"

// Dims describes the shape of an output array. A scalar axis is 1, so a
// 2D matrix is {X, Y, 1} and a 1D vector {X, 1, 1}.
type Dims struct {
	X, Y, Z int
}

// Rank returns the number of axes larger than one (1, 2 or 3), with a
// minimum of 1 so a 1x1x1 grid is rank 1.
func (d Dims) Rank() int {
	r := 0
	if d.X > 1 {
		r++
	}
	if d.Y > 1 {
		r++
	}
	if d.Z > 1 {
		r++
	}
	if r == 0 {
		return 1
	}
	return r
}

// Len returns the number of elements.
func (d Dims) Len() int { return d.X * d.Y * d.Z }

// Valid reports whether all axes are positive.
func (d Dims) Valid() bool { return d.X > 0 && d.Y > 0 && d.Z > 0 }

// String formats dims as "XxYxZ" omitting trailing unit axes.
func (d Dims) String() string {
	switch {
	case d.Z > 1:
		return fmt.Sprintf("%dx%dx%d", d.X, d.Y, d.Z)
	case d.Y > 1:
		return fmt.Sprintf("%dx%d", d.X, d.Y)
	default:
		return fmt.Sprintf("%d", d.X)
	}
}

// Coord is an element position within a grid.
type Coord struct {
	X, Y, Z int
}

// Grid is a dense row-major float64 array with explicit shape.
type Grid struct {
	dims Dims
	data []float64
}

// New allocates a zeroed grid of the given shape. It panics on invalid dims.
func New(d Dims) *Grid {
	if !d.Valid() {
		panic(fmt.Sprintf("grid: invalid dims %+v", d))
	}
	return &Grid{dims: d, data: make([]float64, d.Len())}
}

// New1D allocates an x-element vector.
func New1D(x int) *Grid { return New(Dims{X: x, Y: 1, Z: 1}) }

// New2D allocates an x-by-y matrix.
func New2D(x, y int) *Grid { return New(Dims{X: x, Y: y, Z: 1}) }

// New3D allocates an x-by-y-by-z volume.
func New3D(x, y, z int) *Grid { return New(Dims{X: x, Y: y, Z: z}) }

// FromSlice wraps data (not copied) in a grid of the given shape.
// It panics if the lengths disagree.
func FromSlice(d Dims, data []float64) *Grid {
	if !d.Valid() || d.Len() != len(data) {
		panic(fmt.Sprintf("grid: FromSlice shape %v does not match %d elements", d, len(data)))
	}
	return &Grid{dims: d, data: data}
}

// Dims returns the shape.
func (g *Grid) Dims() Dims { return g.dims }

// Len returns the number of elements.
func (g *Grid) Len() int { return len(g.data) }

// Data returns the backing slice (row-major; x fastest).
func (g *Grid) Data() []float64 { return g.data }

// Index converts a coordinate to a flat offset.
func (g *Grid) Index(c Coord) int {
	return (c.Z*g.dims.Y+c.Y)*g.dims.X + c.X
}

// CoordOf converts a flat offset to a coordinate.
func (g *Grid) CoordOf(i int) Coord {
	x := i % g.dims.X
	rest := i / g.dims.X
	y := rest % g.dims.Y
	z := rest / g.dims.Y
	return Coord{X: x, Y: y, Z: z}
}

// At returns the element at c.
func (g *Grid) At(c Coord) float64 { return g.data[g.Index(c)] }

// Set stores v at c.
func (g *Grid) Set(c Coord, v float64) { g.data[g.Index(c)] = v }

// At2 returns the element at (x, y) of a 2D grid.
func (g *Grid) At2(x, y int) float64 { return g.data[y*g.dims.X+x] }

// Set2 stores v at (x, y) of a 2D grid.
func (g *Grid) Set2(x, y int, v float64) { g.data[y*g.dims.X+x] = v }

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	out := New(g.dims)
	copy(out.data, g.data)
	return out
}

// Fill sets every element to v.
func (g *Grid) Fill(v float64) {
	for i := range g.data {
		g.data[i] = v
	}
}

// Sum returns the sum over all elements.
func (g *Grid) Sum() float64 {
	var s float64
	for _, v := range g.data {
		s += v
	}
	return s
}

// Equal reports whether two grids have identical shape and bit-identical
// contents.
func (g *Grid) Equal(other *Grid) bool {
	if g.dims != other.dims {
		return false
	}
	for i, v := range g.data {
		if v != other.data[i] {
			// NaN != NaN: treat NaN-vs-NaN as equal bits would require
			// bit comparison; for outputs NaN is always a corruption,
			// so plain inequality is the intended semantics.
			return false
		}
	}
	return true
}

// InBounds reports whether c is a valid coordinate.
func (g *Grid) InBounds(c Coord) bool {
	return c.X >= 0 && c.X < g.dims.X &&
		c.Y >= 0 && c.Y < g.dims.Y &&
		c.Z >= 0 && c.Z < g.dims.Z
}
