package grid

import (
	"testing"
	"testing/quick"
)

func TestDimsRank(t *testing.T) {
	cases := []struct {
		d    Dims
		want int
	}{
		{Dims{1, 1, 1}, 1},
		{Dims{5, 1, 1}, 1},
		{Dims{5, 5, 1}, 2},
		{Dims{5, 5, 5}, 3},
		{Dims{1, 5, 1}, 1},
		{Dims{1, 5, 5}, 2},
	}
	for _, c := range cases {
		if got := c.d.Rank(); got != c.want {
			t.Fatalf("Rank(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestDimsString(t *testing.T) {
	if (Dims{4, 1, 1}).String() != "4" {
		t.Fatal("1D string wrong")
	}
	if (Dims{4, 5, 1}).String() != "4x5" {
		t.Fatal("2D string wrong")
	}
	if (Dims{4, 5, 6}).String() != "4x5x6" {
		t.Fatal("3D string wrong")
	}
}

func TestIndexCoordRoundTrip(t *testing.T) {
	g := New3D(7, 5, 3)
	for i := 0; i < g.Len(); i++ {
		c := g.CoordOf(i)
		if g.Index(c) != i {
			t.Fatalf("round trip failed at %d -> %+v -> %d", i, c, g.Index(c))
		}
		if !g.InBounds(c) {
			t.Fatalf("CoordOf produced out-of-bounds %+v", c)
		}
	}
}

func TestIndexCoordProperty(t *testing.T) {
	g := New3D(11, 9, 4)
	f := func(raw uint16) bool {
		i := int(raw) % g.Len()
		return g.Index(g.CoordOf(i)) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAtSet(t *testing.T) {
	g := New2D(4, 3)
	g.Set(Coord{X: 2, Y: 1}, 42)
	if g.At(Coord{X: 2, Y: 1}) != 42 {
		t.Fatal("At/Set mismatch")
	}
	if g.At2(2, 1) != 42 {
		t.Fatal("At2 disagrees with At")
	}
	g.Set2(3, 2, 7)
	if g.At(Coord{X: 3, Y: 2}) != 7 {
		t.Fatal("Set2 disagrees with At")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New1D(5)
	g.Fill(1)
	c := g.Clone()
	c.Data()[0] = 99
	if g.Data()[0] != 1 {
		t.Fatal("Clone shares backing store")
	}
	if !g.Equal(g.Clone()) {
		t.Fatal("Clone not equal to source")
	}
}

func TestEqual(t *testing.T) {
	a := New2D(3, 3)
	b := New2D(3, 3)
	if !a.Equal(b) {
		t.Fatal("zero grids not equal")
	}
	b.Set2(1, 1, 5)
	if a.Equal(b) {
		t.Fatal("different grids reported equal")
	}
	c := New2D(3, 4)
	if a.Equal(c) {
		t.Fatal("different shapes reported equal")
	}
}

func TestSumFill(t *testing.T) {
	g := New3D(2, 2, 2)
	g.Fill(2.5)
	if g.Sum() != 20 {
		t.Fatalf("Sum = %v", g.Sum())
	}
}

func TestFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	g := FromSlice(Dims{X: 3, Y: 2, Z: 1}, data)
	if g.At2(0, 1) != 4 {
		t.Fatal("FromSlice row-major layout wrong")
	}
	data[0] = 9
	if g.At2(0, 0) != 9 {
		t.Fatal("FromSlice should wrap, not copy")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice shape mismatch did not panic")
		}
	}()
	FromSlice(Dims{X: 2, Y: 2, Z: 1}, []float64{1})
}

func TestNewPanicsOnInvalidDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero axis did not panic")
		}
	}()
	New(Dims{X: 0, Y: 1, Z: 1})
}

func TestInBounds(t *testing.T) {
	g := New2D(3, 3)
	if g.InBounds(Coord{X: 3, Y: 0}) || g.InBounds(Coord{X: -1, Y: 0}) ||
		g.InBounds(Coord{X: 0, Y: 0, Z: 1}) {
		t.Fatal("InBounds accepted out-of-range coordinate")
	}
	if !g.InBounds(Coord{X: 2, Y: 2}) {
		t.Fatal("InBounds rejected valid coordinate")
	}
}

func TestRowMajorOrder(t *testing.T) {
	g := New3D(2, 2, 2)
	for i := 0; i < 8; i++ {
		g.Data()[i] = float64(i)
	}
	// x fastest, then y, then z.
	if g.At(Coord{X: 1, Y: 0, Z: 0}) != 1 {
		t.Fatal("x stride wrong")
	}
	if g.At(Coord{X: 0, Y: 1, Z: 0}) != 2 {
		t.Fatal("y stride wrong")
	}
	if g.At(Coord{X: 0, Y: 0, Z: 1}) != 4 {
		t.Fatal("z stride wrong")
	}
}
