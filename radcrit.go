// Package radcrit reproduces "Radiation-Induced Error Criticality in
// Modern HPC Parallel Accelerators" (Oliveira et al., HPCA 2017) as a Go
// library: behavioural models of the NVIDIA K40 and Intel Xeon Phi 3120A,
// a neutron-beam campaign simulator substituting for LANSCE/ISIS beam
// time, real implementations of the paper's four workloads (DGEMM,
// LavaMD, HotSpot, and a from-scratch CLAMR-equivalent shallow-water AMR
// solver), and the paper's error-criticality methodology: incorrect-
// element counts, relative error, mean relative error and spatial
// locality under an imprecise-computing tolerance filter.
//
// This package is the public facade; examples and the regeneration
// commands use it exclusively. The heavy lifting lives in internal/
// packages (one per subsystem, see DESIGN.md).
//
// Quick start — a campaign is a declarative Plan executed by a Runner:
//
//	plan := radcrit.NewPlan(42, 500).
//		WithKernelOnDevices("dgemm:1024", "k40", "phi").
//		WithThresholds(0, 2)
//	res, err := radcrit.NewBatchRunner().Run(ctx, plan)
//	if err != nil { ... }
//	for _, cell := range res.Cells {
//		fmt.Println(cell.Info.Device, cell.Summary.SDCFIT)
//	}
//
// Plans serialise to JSON (LoadPlan/SavePlan), so the same campaign is a
// shareable artifact, a CLI argument (-plan plan.json on every cmd/
// tool), and — eventually — a serving-layer request body. Devices and
// kernels are addressed by registry name ("k40", "dgemm:1024",
// "hotspot:1024x400"); third-party scenarios join via RegisterDevice /
// RegisterKernel. The pre-plan constructors (K40, NewDGEMM, RunCampaign,
// ...) remain as thin wrappers for programmatic use.
package radcrit

import (
	"io"

	"radcrit/internal/arch"
	"radcrit/internal/campaign"
	"radcrit/internal/core"
	"radcrit/internal/harden"
	"radcrit/internal/k40"
	"radcrit/internal/kernels"
	"radcrit/internal/kernels/clamr"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/kernels/hotspot"
	"radcrit/internal/kernels/lavamd"
	"radcrit/internal/logdata"
	"radcrit/internal/metrics"
	"radcrit/internal/phi"
	"radcrit/internal/registry"
	"radcrit/internal/report"
)

// Re-exported core types. Aliases keep the public surface thin while the
// implementation stays in internal packages.
type (
	// Device is an accelerator model.
	Device = arch.Device
	// Kernel is one benchmark workload at one input configuration.
	Kernel = kernels.Kernel
	// Config controls a campaign's statistical weight.
	Config = campaign.Config
	// Result is one campaign cell's aggregated outcome.
	Result = campaign.Result
	// Report is one execution's output-mismatch report.
	Report = metrics.Report
	// Criticality is the aggregate criticality profile (the paper's §III
	// methodology applied to a set of runs).
	Criticality = core.Criticality
	// AnalysisOptions configure the threshold filter and display caps.
	AnalysisOptions = core.Options
	// Log is the CAROL-style public campaign log.
	Log = logdata.Log
	// Scale selects paper-scale or test-scale experiment sizing.
	Scale = campaign.Scale

	// Sink consumes strike outcomes in index order during a streaming
	// campaign (DESIGN.md §6). Outcome reports are only valid during the
	// Consume call — the engine recycles them afterwards (DESIGN.md §8);
	// Clone a report to retain it.
	Sink = campaign.Sink
	// StreamInfo is the cell metadata a streaming campaign yields in
	// place of a retained Result.
	StreamInfo = campaign.StreamInfo
	// TallyReducer accumulates the outcome tally online.
	TallyReducer = campaign.TallyReducer
	// SDCCountReducer counts threshold-surviving SDCs online (SDC FIT).
	SDCCountReducer = campaign.SDCCountReducer
	// LocalityReducer accumulates the spatial-pattern breakdown online.
	LocalityReducer = campaign.LocalityReducer
	// FilteredFractionReducer tracks the filter-cleared SDC share online.
	FilteredFractionReducer = campaign.FilteredFractionReducer
	// ScatterReducer keeps a bounded reservoir of scatter points.
	ScatterReducer = campaign.ScatterReducer
	// CheckpointSink streams events into a resumable campaign log.
	CheckpointSink = campaign.CheckpointSink
	// LogResume is the recoverable state of a truncated streamed log.
	LogResume = logdata.Resume

	// Plan is a declarative, serialisable campaign: named cells plus the
	// statistical configuration, validated before any compute is spent.
	Plan = campaign.Plan
	// CellSpec names one plan cell by registry names.
	CellSpec = campaign.CellSpec
	// Runner executes a validated plan under a context.
	Runner = campaign.Runner
	// PlanResult is a Runner's per-cell record of one plan execution.
	PlanResult = campaign.PlanResult
	// CellOutcome is one plan cell's execution record.
	CellOutcome = campaign.CellOutcome
	// Summary is a cell's statistics under the plan's thresholds,
	// bit-identical between the batch and streaming runners.
	Summary = campaign.Summary
	// Progress carries a Runner's optional OnCell/OnChunk hooks.
	Progress = campaign.Progress
	// AdaptiveSpec configures sequential early stopping: stop a cell once
	// the anytime-valid confidence interval for its SDC proportion is
	// tighter than the target half-width (attach with Plan.WithAdaptive).
	AdaptiveSpec = campaign.AdaptiveSpec
	// CellError is the typed failure of one experiment cell.
	CellError = campaign.CellError

	// DeviceFactory constructs a registered device by name.
	DeviceFactory = registry.DeviceFactory
	// KernelEntry describes a registered kernel family (validation
	// separate from construction, so plan validation never builds golden
	// state).
	KernelEntry = registry.KernelEntry
)

// Experiment scales.
const (
	TestScale  = campaign.TestScale
	PaperScale = campaign.PaperScale
)

// DefaultThresholdPct is the paper's conservative 2% relative-error filter.
const DefaultThresholdPct = metrics.DefaultThresholdPct

// K40 returns the NVIDIA Tesla K40 (Kepler GK110b) model.
func K40() Device { return k40.New() }

// XeonPhi returns the Intel Xeon Phi 3120A (Knights Corner) model.
func XeonPhi() Device { return phi.New() }

// Devices returns both tested accelerators.
func Devices() []Device { return campaign.Devices() }

// NewDGEMM returns an n x n matrix-multiplication kernel (Table II sweeps
// 1024 through 8192).
func NewDGEMM(n int) *dgemm.Kernel { return dgemm.New(n) }

// NewLavaMD returns a particle-interaction kernel over g boxes per
// dimension (Table II uses 13, 15, 19, 23).
func NewLavaMD(g int) *lavamd.Kernel { return lavamd.New(g) }

// NewHotSpot returns the 2D thermal stencil (Table II: 1024x1024).
// Construction runs the golden simulation once.
func NewHotSpot(side, iters int) *hotspot.Kernel { return hotspot.New(side, iters) }

// NewCLAMR returns the shallow-water AMR dam-break kernel substituting for
// LANL's proprietary CLAMR (Table II: 512x512). Construction runs the
// golden simulation once.
func NewCLAMR(side, steps int) *clamr.Kernel { return clamr.New(side, steps) }

// CampaignConfig returns the standard campaign configuration: `strikes`
// particle strikes under LANSCE flux, reproducible from seed.
func CampaignConfig(seed uint64, strikes int) Config {
	return campaign.DefaultConfig(seed, strikes)
}

// --- Declarative plans, registries and runners ---

// NewPlan starts a fluent campaign plan under seed with a per-cell strike
// budget; add cells with WithCell/WithKernelOnDevices and hand it to a
// Runner.
func NewPlan(seed uint64, strikes int) *Plan { return campaign.NewPlan(seed, strikes) }

// LoadPlan reads and validates a JSON campaign plan.
func LoadPlan(r io.Reader) (*Plan, error) { return campaign.LoadPlan(r) }

// SavePlan validates p and writes it as indented JSON.
func SavePlan(w io.Writer, p *Plan) error { return campaign.SavePlan(w, p) }

// NewBatchRunner returns the memoised batch engine as a Runner: cells run
// sequentially, every outcome retains its full Result.
func NewBatchRunner() *campaign.BatchRunner { return &campaign.BatchRunner{} }

// NewMatrixRunner returns the concurrent batch engine as a Runner: all
// cells at once, memoised and single-flighted, outcomes in plan order.
func NewMatrixRunner() *campaign.MatrixRunner { return &campaign.MatrixRunner{} }

// NewStreamRunner returns the bounded-memory streaming engine as a
// Runner: summaries come from online reducers and no reports are
// retained.
func NewStreamRunner() *campaign.StreamRunner { return &campaign.StreamRunner{} }

// NewAdaptiveRunner returns the early-stopping campaign engine as a
// Runner: cells of a plan carrying an AdaptiveSpec stop as soon as their
// confidence target is met, freed strikes are re-dealt to the cells with
// the widest intervals, and every summary stays byte-identical to a
// straight run with the same consumed strike count. Plans without a spec
// delegate to the streaming engine unchanged.
func NewAdaptiveRunner() *campaign.AdaptiveRunner { return &campaign.AdaptiveRunner{} }

// RegisterDevice registers a device factory under name, making it
// addressable from plans and every cmd/ tool.
func RegisterDevice(name string, f DeviceFactory) { registry.RegisterDevice(name, f) }

// RegisterKernel registers a kernel family under name, making specs like
// "name:params" addressable from plans and every cmd/ tool.
func RegisterKernel(name string, e KernelEntry) { registry.RegisterKernel(name, e) }

// NewDevice constructs a registered device by name ("k40", "phi").
func NewDevice(name string) (Device, error) { return registry.NewDevice(name) }

// NewKernel constructs a registered kernel from a spec ("dgemm:1024",
// "lavamd:19", "hotspot:1024x400", "clamr:512x600").
func NewKernel(spec string) (Kernel, error) { return registry.NewKernel(spec) }

// DeviceNames lists the registered device names, sorted.
func DeviceNames() []string { return registry.DeviceNames() }

// KernelNames lists the registered kernel family names, sorted.
func KernelNames() []string { return registry.KernelNames() }

// SplitKernelSpec splits "name:params" into its parts.
func SplitKernelSpec(spec string) (name, params string) { return registry.SplitSpec(spec) }

// RunCampaign simulates a beam campaign cell: cfg.Strikes strikes of kern
// on dev, each resolved by the device architecture and propagated through
// the kernel's real computation.
func RunCampaign(dev Device, kern Kernel, cfg Config) *Result {
	return campaign.Run(dev, kern, cfg)
}

// RunCampaignStreaming simulates the same campaign cell through the
// streaming engine: every outcome is fed to the sinks in strike-index
// order and then dropped, so memory stays O(chunk + reducer state) however
// many strikes — or SDCs — the cell produces. The reducers reproduce the
// batch Result's statistics bit for bit (DESIGN.md §6).
func RunCampaignStreaming(dev Device, kern Kernel, cfg Config, sinks ...Sink) (StreamInfo, error) {
	return campaign.RunStreaming(dev, kern, cfg, sinks...)
}

// ResumeCampaignStreaming re-runs only the strikes from index start
// onwards; per-index randomness makes the tail bit-identical to the same
// indices of a full run.
func ResumeCampaignStreaming(dev Device, kern Kernel, cfg Config, start int, sinks ...Sink) (StreamInfo, error) {
	return campaign.RunStreamingFrom(dev, kern, cfg, start, sinks...)
}

// NewTallyReducer returns a streaming outcome-tally accumulator.
func NewTallyReducer() *TallyReducer { return campaign.NewTallyReducer() }

// NewSDCCountReducer returns a streaming SDC counter for each threshold.
func NewSDCCountReducer(thresholds ...float64) *SDCCountReducer {
	return campaign.NewSDCCountReducer(thresholds...)
}

// NewLocalityReducer returns a streaming locality-breakdown accumulator.
func NewLocalityReducer(thresholdPct float64) *LocalityReducer {
	return campaign.NewLocalityReducer(thresholdPct)
}

// NewFilteredFractionReducer returns a streaming filtered-fraction tracker.
func NewFilteredFractionReducer(thresholdPct float64) *FilteredFractionReducer {
	return campaign.NewFilteredFractionReducer(thresholdPct)
}

// NewScatterReducer returns a bounded reservoir of scatter points (pass a
// nil RNG for the default deterministic eviction stream).
func NewScatterReducer(capPct float64, maxPoints int) *ScatterReducer {
	return campaign.NewScatterReducer(capPct, maxPoints, nil)
}

// NewCampaignLogWriter starts a checkpointed streaming campaign log for
// one cell: pass the returned sink to RunCampaignStreaming, then Close it.
// A run killed mid-campaign leaves a log recoverable by RecoverCampaignLog.
func NewCampaignLogWriter(w io.Writer, dev Device, kern Kernel, cfg Config) (*CheckpointSink, error) {
	info, err := campaign.CellInfo(dev, kern, cfg)
	if err != nil {
		return nil, err
	}
	return campaign.NewCheckpointSink(w, info, cfg.Seed)
}

// RecoverCampaignLog completes a truncated checkpointed campaign log by
// replaying its salvageable prefix into w and re-running only the strikes
// after its last flushed checkpoint. The recovered log is identical to an
// uninterrupted run's.
func RecoverCampaignLog(w io.Writer, truncated io.Reader, dev Device, kern Kernel, cfg Config) error {
	return campaign.RecoverLog(w, truncated, dev, kern, cfg)
}

// ParseResumableLog reads a possibly-truncated streamed campaign log and
// reports where the campaign must restart.
func ParseResumableLog(r io.Reader) (LogResume, error) { return logdata.ParseResume(r) }

// Analyze applies the paper's criticality methodology to a set of
// per-execution reports.
func Analyze(reports []*Report, opts AnalysisOptions) *Criticality {
	return core.Analyze(reports, opts)
}

// AnalyzeLog re-analyses a parsed campaign log with a chosen filter — the
// third-party re-analysis path the paper enables by publishing raw logs.
func AnalyzeLog(l *Log, opts AnalysisOptions) *Criticality {
	return core.AnalyzeLog(l, opts)
}

// DefaultAnalysisOptions returns the paper's conservative configuration
// (2% threshold, no display cap).
func DefaultAnalysisOptions() AnalysisOptions { return core.DefaultOptions() }

// WriteLog serialises a campaign result into the public log format.
func WriteLog(w io.Writer, res *Result, seed uint64) error {
	return logdata.Write(w, res.ToLog(seed))
}

// ParseLog reads a log written by WriteLog.
func ParseLog(r io.Reader) (*Log, error) { return logdata.Parse(r) }

// RenderScatter renders a Figure-2/4/6/8 style plot of a campaign result.
func RenderScatter(w io.Writer, res *Result, capPct float64) {
	s := campaign.ScatterSeries{
		Device: res.Device,
		Kernel: res.Kernel,
		CapPct: capPct,
		Series: []campaign.LabeledPoints{{Label: res.Input, Points: res.Scatter(capPct)}},
	}
	report.Scatter(w, s, 64, 16)
}

// RenderLocality renders a Figure-3/5/7 style FIT-by-locality bar pair.
func RenderLocality(w io.Writer, res *Result, thresholdPct float64) {
	f := campaign.LocalityFigure{
		Device:       res.Device,
		Kernel:       res.Kernel,
		ThresholdPct: thresholdPct,
		Bars: []campaign.LocalityBar{{
			Input:            res.Input,
			All:              res.LocalityBreakdown(0),
			Filtered:         res.LocalityBreakdown(thresholdPct),
			FilterMeaningful: res.FilteredFraction(thresholdPct) > 0,
		}},
	}
	report.LocalityBars(w, f, 60)
}

// Verdict phrases the cross-architecture criticality comparison of two
// analyses, mirroring §V-E's trade-off discussion.
func Verdict(nameA string, a *Criticality, nameB string, b *Criticality) string {
	return core.Verdict(nameA, a, nameB, b)
}

// HardeningAdvice is a ranked selective-hardening plan: the paper's §VI
// future work ("apply selective hardening to only those ... resources
// whose corruption is likely to produce the observed critical errors").
type HardeningAdvice = harden.Advice

// AdviseHardening ranks the resources behind a campaign's critical SDCs
// and projects the benefit of hardening each cumulatively.
func AdviseHardening(res *Result, thresholdPct float64) HardeningAdvice {
	return harden.Advise(res, thresholdPct)
}
