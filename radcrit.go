// Package radcrit reproduces "Radiation-Induced Error Criticality in
// Modern HPC Parallel Accelerators" (Oliveira et al., HPCA 2017) as a Go
// library: behavioural models of the NVIDIA K40 and Intel Xeon Phi 3120A,
// a neutron-beam campaign simulator substituting for LANSCE/ISIS beam
// time, real implementations of the paper's four workloads (DGEMM,
// LavaMD, HotSpot, and a from-scratch CLAMR-equivalent shallow-water AMR
// solver), and the paper's error-criticality methodology: incorrect-
// element counts, relative error, mean relative error and spatial
// locality under an imprecise-computing tolerance filter.
//
// This package is the public facade; examples and the regeneration
// commands use it exclusively. The heavy lifting lives in internal/
// packages (one per subsystem, see DESIGN.md).
//
// Quick start:
//
//	dev := radcrit.K40()
//	kern := radcrit.NewDGEMM(1024)
//	res := radcrit.RunCampaign(dev, kern, radcrit.CampaignConfig(42, 500))
//	crit := radcrit.Analyze(res.Reports, radcrit.DefaultAnalysisOptions())
//	fmt.Println(crit)
package radcrit

import (
	"io"

	"radcrit/internal/arch"
	"radcrit/internal/campaign"
	"radcrit/internal/core"
	"radcrit/internal/harden"
	"radcrit/internal/k40"
	"radcrit/internal/kernels"
	"radcrit/internal/kernels/clamr"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/kernels/hotspot"
	"radcrit/internal/kernels/lavamd"
	"radcrit/internal/logdata"
	"radcrit/internal/metrics"
	"radcrit/internal/phi"
	"radcrit/internal/report"
)

// Re-exported core types. Aliases keep the public surface thin while the
// implementation stays in internal packages.
type (
	// Device is an accelerator model.
	Device = arch.Device
	// Kernel is one benchmark workload at one input configuration.
	Kernel = kernels.Kernel
	// Config controls a campaign's statistical weight.
	Config = campaign.Config
	// Result is one campaign cell's aggregated outcome.
	Result = campaign.Result
	// Report is one execution's output-mismatch report.
	Report = metrics.Report
	// Criticality is the aggregate criticality profile (the paper's §III
	// methodology applied to a set of runs).
	Criticality = core.Criticality
	// AnalysisOptions configure the threshold filter and display caps.
	AnalysisOptions = core.Options
	// Log is the CAROL-style public campaign log.
	Log = logdata.Log
	// Scale selects paper-scale or test-scale experiment sizing.
	Scale = campaign.Scale
)

// Experiment scales.
const (
	TestScale  = campaign.TestScale
	PaperScale = campaign.PaperScale
)

// DefaultThresholdPct is the paper's conservative 2% relative-error filter.
const DefaultThresholdPct = metrics.DefaultThresholdPct

// K40 returns the NVIDIA Tesla K40 (Kepler GK110b) model.
func K40() Device { return k40.New() }

// XeonPhi returns the Intel Xeon Phi 3120A (Knights Corner) model.
func XeonPhi() Device { return phi.New() }

// Devices returns both tested accelerators.
func Devices() []Device { return campaign.Devices() }

// NewDGEMM returns an n x n matrix-multiplication kernel (Table II sweeps
// 1024 through 8192).
func NewDGEMM(n int) *dgemm.Kernel { return dgemm.New(n) }

// NewLavaMD returns a particle-interaction kernel over g boxes per
// dimension (Table II uses 13, 15, 19, 23).
func NewLavaMD(g int) *lavamd.Kernel { return lavamd.New(g) }

// NewHotSpot returns the 2D thermal stencil (Table II: 1024x1024).
// Construction runs the golden simulation once.
func NewHotSpot(side, iters int) *hotspot.Kernel { return hotspot.New(side, iters) }

// NewCLAMR returns the shallow-water AMR dam-break kernel substituting for
// LANL's proprietary CLAMR (Table II: 512x512). Construction runs the
// golden simulation once.
func NewCLAMR(side, steps int) *clamr.Kernel { return clamr.New(side, steps) }

// CampaignConfig returns the standard campaign configuration: `strikes`
// particle strikes under LANSCE flux, reproducible from seed.
func CampaignConfig(seed uint64, strikes int) Config {
	return campaign.DefaultConfig(seed, strikes)
}

// RunCampaign simulates a beam campaign cell: cfg.Strikes strikes of kern
// on dev, each resolved by the device architecture and propagated through
// the kernel's real computation.
func RunCampaign(dev Device, kern Kernel, cfg Config) *Result {
	return campaign.Run(dev, kern, cfg)
}

// Analyze applies the paper's criticality methodology to a set of
// per-execution reports.
func Analyze(reports []*Report, opts AnalysisOptions) *Criticality {
	return core.Analyze(reports, opts)
}

// AnalyzeLog re-analyses a parsed campaign log with a chosen filter — the
// third-party re-analysis path the paper enables by publishing raw logs.
func AnalyzeLog(l *Log, opts AnalysisOptions) *Criticality {
	return core.AnalyzeLog(l, opts)
}

// DefaultAnalysisOptions returns the paper's conservative configuration
// (2% threshold, no display cap).
func DefaultAnalysisOptions() AnalysisOptions { return core.DefaultOptions() }

// WriteLog serialises a campaign result into the public log format.
func WriteLog(w io.Writer, res *Result, seed uint64) error {
	return logdata.Write(w, res.ToLog(seed))
}

// ParseLog reads a log written by WriteLog.
func ParseLog(r io.Reader) (*Log, error) { return logdata.Parse(r) }

// RenderScatter renders a Figure-2/4/6/8 style plot of a campaign result.
func RenderScatter(w io.Writer, res *Result, capPct float64) {
	s := campaign.ScatterSeries{
		Device: res.Device,
		Kernel: res.Kernel,
		CapPct: capPct,
		Series: []campaign.LabeledPoints{{Label: res.Input, Points: res.Scatter(capPct)}},
	}
	report.Scatter(w, s, 64, 16)
}

// RenderLocality renders a Figure-3/5/7 style FIT-by-locality bar pair.
func RenderLocality(w io.Writer, res *Result, thresholdPct float64) {
	f := campaign.LocalityFigure{
		Device:       res.Device,
		Kernel:       res.Kernel,
		ThresholdPct: thresholdPct,
		Bars: []campaign.LocalityBar{{
			Input:            res.Input,
			All:              res.LocalityBreakdown(0),
			Filtered:         res.LocalityBreakdown(thresholdPct),
			FilterMeaningful: res.FilteredFraction(thresholdPct) > 0,
		}},
	}
	report.LocalityBars(w, f, 60)
}

// Verdict phrases the cross-architecture criticality comparison of two
// analyses, mirroring §V-E's trade-off discussion.
func Verdict(nameA string, a *Criticality, nameB string, b *Criticality) string {
	return core.Verdict(nameA, a, nameB, b)
}

// HardeningAdvice is a ranked selective-hardening plan: the paper's §VI
// future work ("apply selective hardening to only those ... resources
// whose corruption is likely to produce the observed critical errors").
type HardeningAdvice = harden.Advice

// AdviseHardening ranks the resources behind a campaign's critical SDCs
// and projects the benefit of hardening each cumulatively.
func AdviseHardening(res *Result, thresholdPct float64) HardeningAdvice {
	return harden.Advise(res, thresholdPct)
}
