package radcrit

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestEndToEnd exercises the full public pipeline: device + kernel ->
// campaign -> log round trip -> criticality analysis -> rendering.
func TestEndToEnd(t *testing.T) {
	dev := K40()
	kern := NewDGEMM(128)
	res := RunCampaign(dev, kern, CampaignConfig(1, 200))

	if res.Tally.Count() != 200 {
		t.Fatalf("strikes accounted: %d", res.Tally.Count())
	}
	if res.Tally.SDC == 0 {
		t.Fatal("no SDCs in 200 strikes")
	}

	// Log round trip.
	var sb strings.Builder
	if err := WriteLog(&sb, res, 1); err != nil {
		t.Fatal(err)
	}
	l, err := ParseLog(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if l.SDCCount() != res.Tally.SDC {
		t.Fatal("log SDC count diverged")
	}

	// Analysis paths agree.
	direct := Analyze(res.Reports, DefaultAnalysisOptions())
	fromLog := AnalyzeLog(l, DefaultAnalysisOptions())
	if direct.CriticalSDCs != fromLog.CriticalSDCs {
		t.Fatalf("analysis diverged: %d vs %d", direct.CriticalSDCs, fromLog.CriticalSDCs)
	}

	// Renderers produce content.
	var out strings.Builder
	RenderScatter(&out, res, 100)
	RenderLocality(&out, res, DefaultThresholdPct)
	if !strings.Contains(out.String(), "K40 DGEMM") {
		t.Fatal("renderers produced no figure content")
	}
}

func TestDevicesDiffer(t *testing.T) {
	k, p := K40(), XeonPhi()
	if k.ShortName() == p.ShortName() {
		t.Fatal("devices not distinct")
	}
	if len(Devices()) != 2 {
		t.Fatal("expected two devices")
	}
}

// TestCrossArchitectureHeadline reproduces the abstract's headline claim:
// "arithmetic operations are less critical for the K40" — for DGEMM the
// K40's surviving errors are smaller and fewer than the Phi's.
func TestCrossArchitectureHeadline(t *testing.T) {
	kern := NewDGEMM(256)
	cfg := CampaignConfig(3, 300)
	opts := DefaultAnalysisOptions()
	opts.CapPct = 100 // the paper's Fig. 2 display cap

	k40Crit := Analyze(RunCampaign(K40(), kern, cfg).Reports, opts)
	phiCrit := Analyze(RunCampaign(XeonPhi(), kern, cfg).Reports, opts)

	// K40 clears far more runs through the 2% filter (paper: 50-75% vs
	// essentially none on the Phi).
	if k40Crit.FilteredFraction <= phiCrit.FilteredFraction {
		t.Fatalf("K40 filtered %v should exceed Phi %v",
			k40Crit.FilteredFraction, phiCrit.FilteredFraction)
	}
	// Phi's DGEMM errors are near the cap; K40's sit lower.
	if phiCrit.MeanRelErrPct.Median < k40Crit.MeanRelErrPct.Median {
		t.Fatalf("Phi median MRE %v should exceed K40's %v",
			phiCrit.MeanRelErrPct.Median, k40Crit.MeanRelErrPct.Median)
	}
	// The verdict must articulate a comparison.
	v := Verdict("K40", k40Crit, "XeonPhi", phiCrit)
	if !strings.Contains(v, "K40") || !strings.Contains(v, "XeonPhi") {
		t.Fatal("verdict names missing")
	}
}

// TestLavaMDTradeoff reproduces §V-E: the Phi corrupts more elements with
// smaller relative errors than the K40 for FDM-style codes.
func TestLavaMDTradeoff(t *testing.T) {
	cfg := CampaignConfig(5, 300)
	// Fig. 4 plots all mismatches (no filter), capped at 20,000% as in
	// the paper's figure note.
	opts := AnalysisOptions{ThresholdPct: 0, CapPct: 20000}

	k40Res := RunCampaign(K40(), NewLavaMD(5), cfg)
	phiRes := RunCampaign(XeonPhi(), NewLavaMD(5), cfg)
	k40Crit := Analyze(k40Res.Reports, opts)
	phiCrit := Analyze(phiRes.Reports, opts)
	if k40Crit.CriticalSDCs == 0 || phiCrit.CriticalSDCs == 0 {
		t.Fatal("no critical SDCs sampled")
	}
	if phiCrit.IncorrectElements.Median <= k40Crit.IncorrectElements.Median {
		t.Fatalf("Phi should corrupt more elements: %v vs %v",
			phiCrit.IncorrectElements.Median, k40Crit.IncorrectElements.Median)
	}
	// Fig. 4a vs 4b: the K40's point cloud sits at larger relative errors
	// (transcendental-unit amplification) while the Phi's — diluted over
	// thousands of cache-shared consumers — sits markedly lower.
	if k40Crit.MeanRelErrPct.Median <= phiCrit.MeanRelErrPct.Median {
		t.Fatalf("K40 median LavaMD MRE %.3f should exceed the Phi's %.3f",
			k40Crit.MeanRelErrPct.Median, phiCrit.MeanRelErrPct.Median)
	}
	_ = k40Res
	_ = phiRes
}

// TestHotSpotResilience reproduces §V-C: stencils are the most resilient
// class — the 2% filter clears the large majority of HotSpot SDCs.
func TestHotSpotResilience(t *testing.T) {
	kern := NewHotSpot(64, 80)
	for _, dev := range Devices() {
		res := RunCampaign(dev, kern, CampaignConfig(9, 300))
		if res.Tally.SDC == 0 {
			t.Fatalf("%s: no SDCs", dev.ShortName())
		}
		frac := res.FilteredFraction(2)
		if frac < 0.6 {
			t.Fatalf("%s: only %.0f%%%% of HotSpot SDCs filtered; paper reports 80-95%%",
				dev.ShortName(), 100*frac)
		}
	}
}

// TestCLAMRCriticality reproduces §V-D: CLAMR errors are widespread,
// mostly square, and essentially none fall under the 2% filter.
func TestCLAMRCriticality(t *testing.T) {
	kern := NewCLAMR(48, 60)
	res := RunCampaign(XeonPhi(), kern, CampaignConfig(11, 300))
	if res.Tally.SDC == 0 {
		t.Fatal("no SDCs")
	}
	if frac := res.FilteredFraction(2); frac > 0.35 {
		t.Fatalf("%.0f%% of CLAMR SDCs filtered; the paper found none", 100*frac)
	}
	crit := Analyze(res.Reports, DefaultAnalysisOptions())
	if crit.LocalityShare(0) != 0 { // metrics.NoPattern guard
		t.Fatal("critical SDC with no pattern")
	}
	if crit.SpreadShare() < 0.7 {
		t.Fatalf("square+cubic share %.2f; the paper reports 99%% square",
			crit.SpreadShare())
	}
}

// TestStreamingFacade exercises the public streaming pipeline: reducers
// fed by RunCampaignStreaming reproduce the batch result, a checkpointed
// log written alongside is parseable, and a truncated copy recovers into
// the identical log.
func TestStreamingFacade(t *testing.T) {
	dev := K40()
	kern := NewDGEMM(128)
	cfg := CampaignConfig(3, 120)
	cfg.StreamChunk = 32
	batch := RunCampaign(dev, kern, cfg)

	var logBuf bytes.Buffer
	ckpt, err := NewCampaignLogWriter(&logBuf, dev, kern, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tally := NewTallyReducer()
	counts := NewSDCCountReducer(0, DefaultThresholdPct)
	info, err := RunCampaignStreaming(dev, kern, cfg, tally, counts, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	if tally.Tally != batch.Tally {
		t.Fatalf("streaming tally %+v != batch %+v", tally.Tally, batch.Tally)
	}
	if got, want := counts.FIT(0, info.Exposure), batch.SDCFIT(0); got != want {
		t.Fatalf("streaming SDC FIT %v != batch %v", got, want)
	}
	full, err := ParseLog(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if full.Masked != batch.Tally.Masked || full.SDCCount() != batch.Tally.SDC {
		t.Fatalf("log counts (masked %d, sdc %d) != tally %+v", full.Masked, full.SDCCount(), batch.Tally)
	}

	// Crash recovery: drop the tail, recover, compare.
	cut := logBuf.Len() / 2
	res, err := ParseResumableLog(bytes.NewReader(logBuf.Bytes()[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete || res.Next <= 0 {
		t.Fatalf("truncated log should resume mid-campaign, got %+v", res)
	}
	var recovered bytes.Buffer
	if err := RecoverCampaignLog(&recovered, bytes.NewReader(logBuf.Bytes()[:cut]), dev, kern, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := ParseLog(bytes.NewReader(recovered.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, full) {
		t.Fatal("recovered log differs from the uninterrupted run")
	}
}
