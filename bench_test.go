// Benchmarks regenerating every table and figure of the paper (one
// Benchmark per artifact, see DESIGN.md §3) plus the ablation studies of
// DESIGN.md §4. Each benchmark reports the headline shape statistic of its
// artifact via b.ReportMetric so `go test -bench` doubles as a compact
// reproduction summary. Test-scale inputs are used so the full suite runs
// in minutes; cmd/figures -scale paper regenerates at Table II sizes.
package radcrit

import (
	"fmt"
	"testing"

	"radcrit/internal/abft"
	"radcrit/internal/arch"
	"radcrit/internal/campaign"
	"radcrit/internal/fault"
	"radcrit/internal/floatbits"
	"radcrit/internal/grid"
	"radcrit/internal/k40"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/metrics"
	"radcrit/internal/phi"
	"radcrit/internal/xrand"
)

const benchStrikes = 120

func benchCfg(i int) campaign.Config {
	return campaign.DefaultConfig(uint64(1000+i), benchStrikes)
}

// BenchmarkTable1 regenerates the kernel classification (Table I).
func BenchmarkTable1(b *testing.B) {
	dev := k40.New()
	for i := 0; i < b.N; i++ {
		ks := campaign.AllKernels(campaign.TestScale, dev)
		if len(ks) != 4 {
			b.Fatal("kernel set wrong")
		}
		for _, k := range ks {
			_ = k.Class()
		}
	}
}

// BenchmarkTable2 regenerates the kernel details (Table II).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, dev := range campaign.Devices() {
			for _, k := range campaign.AllKernels(campaign.TestScale, dev) {
				p := k.Profile(dev)
				if p.Threads <= 0 {
					b.Fatal("profile degenerate")
				}
			}
		}
	}
}

// BenchmarkFigure2 regenerates the DGEMM MRE-vs-elements scatter.
func BenchmarkFigure2(b *testing.B) {
	var sdcs int
	for i := 0; i < b.N; i++ {
		for _, dev := range campaign.Devices() {
			s := campaign.BuildDGEMMScatter(dev, campaign.TestScale, benchCfg(i))
			for _, series := range s.Series {
				sdcs += len(series.Points)
			}
		}
	}
	b.ReportMetric(float64(sdcs)/float64(b.N), "SDCs/op")
}

// BenchmarkFigure3 regenerates the DGEMM locality/FIT breakdown and
// reports the K40's 2%-filter reliability gain (paper: >= 60%).
func BenchmarkFigure3(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		f := campaign.BuildDGEMMLocality(k40.New(), campaign.TestScale, benchCfg(i), 2)
		_ = campaign.BuildDGEMMLocality(phi.New(), campaign.TestScale, benchCfg(i), 2)
		last := f.Bars[len(f.Bars)-1]
		if t := last.All.Total(); t > 0 {
			gain += 1 - last.Filtered.Total()/t
		}
	}
	b.ReportMetric(100*gain/float64(b.N), "K40-filter-gain-%")
}

// BenchmarkFigure4 regenerates the LavaMD scatter.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, dev := range campaign.Devices() {
			_ = campaign.BuildLavaMDScatter(dev, campaign.TestScale, benchCfg(i))
		}
	}
}

// BenchmarkFigure5 regenerates the LavaMD locality breakdown and reports
// the Phi's cubic+square share (paper: dominant).
func BenchmarkFigure5(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		_ = campaign.BuildLavaMDLocality(k40.New(), campaign.TestScale, benchCfg(i), 2)
		f := campaign.BuildLavaMDLocality(phi.New(), campaign.TestScale, benchCfg(i), 2)
		var spread, total float64
		for _, bar := range f.Bars {
			spread += bar.All.Values[0] + bar.All.Values[1] // cubic + square
			total += bar.All.Total()
		}
		if total > 0 {
			share += spread / total
		}
	}
	b.ReportMetric(100*share/float64(b.N), "Phi-cubic+square-%")
}

// BenchmarkFigure6 regenerates the HotSpot scatter.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, dev := range campaign.Devices() {
			_ = campaign.BuildHotSpotScatter(dev, campaign.TestScale, benchCfg(i))
		}
	}
}

// BenchmarkFigure7 regenerates the HotSpot locality breakdown and reports
// the filtered fraction (paper: 80-95% of executions under 2%).
func BenchmarkFigure7(b *testing.B) {
	var filtered float64
	for i := 0; i < b.N; i++ {
		res := campaign.Run(k40.New(), campaign.HotSpotKernel(campaign.TestScale), benchCfg(i))
		filtered += res.FilteredFraction(2)
		_ = campaign.BuildHotSpotLocality(phi.New(), campaign.TestScale, benchCfg(i), 2)
	}
	b.ReportMetric(100*filtered/float64(b.N), "K40-filtered-%")
}

// BenchmarkFigure8 regenerates the CLAMR scatter (Xeon Phi).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = campaign.BuildCLAMRScatter(phi.New(), campaign.TestScale, benchCfg(i))
	}
}

// BenchmarkFigure9 regenerates the CLAMR error-wave locality map.
func BenchmarkFigure9(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		m := campaign.BuildCLAMRLocalityMap(phi.New(), campaign.TestScale, benchCfg(i))
		frac += float64(m.Count) / float64(m.Width*m.Height)
	}
	b.ReportMetric(100*frac/float64(b.N), "wave-coverage-%")
}

// BenchmarkSDCRatios regenerates the §V preamble SDC:DUE statistics.
func BenchmarkSDCRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := campaign.BuildSDCRatios(campaign.TestScale, benchCfg(i))
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkInputScaling regenerates the §V-A FIT-growth analysis and
// reports the K40 growth factor at paper-scale profiles (paper: ~7x;
// evaluated analytically so the paper-scale number is exact).
func BenchmarkInputScaling(b *testing.B) {
	dev := k40.New()
	var growth float64
	for i := 0; i < b.N; i++ {
		small := dgemm.New(1024).Profile(dev)
		large := dgemm.New(4096).Profile(dev)
		_, sdcS, _, _ := dev.Model().ExpectedRates(small)
		_, sdcL, _, _ := dev.Model().ExpectedRates(large)
		growth = (sdcL * dev.SensitiveArea(large)) / (sdcS * dev.SensitiveArea(small))
		_ = campaign.BuildDGEMMScaling(dev, campaign.TestScale, benchCfg(i), 2)
	}
	b.ReportMetric(growth, "K40-FIT-growth-x")
}

// BenchmarkABFTCoverage regenerates the §V-A ABFT analysis and reports
// the K40 correctable share (paper: 60-80%).
func BenchmarkABFTCoverage(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		rows := campaign.BuildABFTCoverage(k40.New(), campaign.TestScale, benchCfg(i))
		frac += rows[len(rows)-1].CorrectableFraction
		_ = campaign.BuildABFTCoverage(phi.New(), campaign.TestScale, benchCfg(i))
	}
	b.ReportMetric(100*frac/float64(b.N), "K40-correctable-%")
}

// BenchmarkMassCheck regenerates the §V-D CLAMR detector coverage
// (paper: 82%).
func BenchmarkMassCheck(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		row := campaign.BuildMassCheckCoverage(phi.New(), campaign.TestScale, benchCfg(i), 2)
		cov += row.Coverage
	}
	b.ReportMetric(100*cov/float64(b.N), "coverage-%")
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationScheduler compares FIT growth with the hardware
// scheduler's strain enabled vs disabled: the strain is the entire
// input-size dependence of the K40's DGEMM FIT.
func BenchmarkAblationScheduler(b *testing.B) {
	var withStrain, without float64
	for i := 0; i < b.N; i++ {
		dev := k40.New()
		small := dgemm.New(1024).Profile(dev)
		large := dgemm.New(4096).Profile(dev)
		grow := func(m *arch.Model) float64 {
			_, s, _, _ := m.ExpectedRates(small)
			_, l, _, _ := m.ExpectedRates(large)
			return (l * m.SensitiveArea(large)) / (s * m.SensitiveArea(small))
		}
		withStrain = grow(dev.Model())
		off := k40.New().Model()
		off.SchedStrainAt64K = 0
		off.RFResidencyPerKWaiting = 0
		without = grow(off)
	}
	b.ReportMetric(withStrain, "growth-with-strain-x")
	b.ReportMetric(without, "growth-without-x")
}

// BenchmarkAblationCacheSharing compares the Phi's incorrect-element
// multiplicity with its coherent-L2 line spread on vs off.
func BenchmarkAblationCacheSharing(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		shared := phi.New()
		res := campaign.Run(shared, dgemm.New(256), campaign.DefaultConfig(uint64(3000+i), benchStrikes))
		with += medianElements(res)

		isolated := phi.New()
		isolated.L2SharingDegree = 1
		res2 := campaign.Run(isolated, dgemm.New(256), campaign.DefaultConfig(uint64(4000+i), benchStrikes))
		without += medianElements(res2)
	}
	b.ReportMetric(with/float64(b.N), "median-elems-shared")
	b.ReportMetric(without/float64(b.N), "median-elems-isolated")
}

func medianElements(res *campaign.Result) float64 {
	if len(res.Reports) == 0 {
		return 0
	}
	counts := make([]int, 0, len(res.Reports))
	for _, r := range res.Reports {
		counts = append(counts, r.Count())
	}
	// insertion sort: tiny slices
	for i := 1; i < len(counts); i++ {
		for j := i; j > 0 && counts[j] < counts[j-1]; j-- {
			counts[j], counts[j-1] = counts[j-1], counts[j]
		}
	}
	return float64(counts[len(counts)/2])
}

// BenchmarkAblationECC compares the K40's SDC rate with register-file and
// shared-memory ECC on vs off.
func BenchmarkAblationECC(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		on := k40.New()
		res := campaign.Run(on, dgemm.New(256), campaign.DefaultConfig(uint64(5000+i), benchStrikes))
		with += float64(res.Tally.SDC)

		off := k40.New()
		off.ECCRegisterFile = false
		off.ECCSharedMemory = false
		res2 := campaign.Run(off, dgemm.New(256), campaign.DefaultConfig(uint64(6000+i), benchStrikes))
		without += float64(res2.Tally.SDC)
	}
	b.ReportMetric(with/float64(b.N), "SDCs-ecc-on")
	b.ReportMetric(without/float64(b.N), "SDCs-ecc-off")
}

// BenchmarkAblationBitModel compares the K40's filtered fraction with its
// mantissa-biased datapath flips vs a Phi-style high-magnitude model: the
// bit-position distribution decides how much imprecise computing buys.
func BenchmarkAblationBitModel(b *testing.B) {
	var biased, uniform float64
	for i := 0; i < b.N; i++ {
		std := k40.New()
		res := campaign.Run(std, dgemm.New(256), campaign.DefaultConfig(uint64(7000+i), benchStrikes))
		biased += res.FilteredFraction(2)

		alt := k40.New()
		alt.DatapathFlip = arch.FlipDist{
			Specs:   []fault.FlipSpec{{Field: floatbits.Exponent, Bits: 1}, {Field: floatbits.AnyField, Bits: 1}},
			Weights: []float64{0.5, 0.5},
		}
		res2 := campaign.Run(alt, dgemm.New(256), campaign.DefaultConfig(uint64(8000+i), benchStrikes))
		uniform += res2.FilteredFraction(2)
	}
	b.ReportMetric(100*biased/float64(b.N), "filtered-mantissa-biased-%")
	b.ReportMetric(100*uniform/float64(b.N), "filtered-high-magnitude-%")
}

// BenchmarkAblationThreshold sweeps the relative-error tolerance and
// reports the K40 DGEMM SDC FIT at each, quantifying how much apparent
// reliability the imprecision budget buys (§III).
func BenchmarkAblationThreshold(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		res := campaign.Run(k40.New(), dgemm.New(256), campaign.DefaultConfig(uint64(9000+i), 300))
		base := res.SDCFIT(0)
		out = ""
		for _, th := range []float64{0.5, 1, 2, 5, 10} {
			out += fmt.Sprintf("%.0f%%@%v ", 100*res.SDCFIT(th)/base, th)
		}
	}
	if testing.Verbose() {
		b.Logf("FIT retained vs threshold: %s", out)
	}
}

// --- Campaign engine: serial vs parallel (DESIGN.md §5) ---

// benchCampaignEngine measures uncached campaign cells at a fixed worker
// count. RunFresh bypasses the memo cache, so every iteration pays the
// full strike loop; the kernel is hoisted so iterations beyond the first
// run against warm golden-state handles (the engine's steady state).
func benchCampaignEngine(b *testing.B, workers int) {
	dev := k40.New()
	kern := dgemm.New(512)
	cfg := campaign.DefaultConfig(42, 400)
	cfg.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := campaign.RunFresh(dev, kern, cfg)
		if res.Tally.Count() != cfg.Strikes {
			b.Fatal("strike count wrong")
		}
	}
}

// BenchmarkCampaignEngineSerial pins the pre-parallel baseline: one worker.
func BenchmarkCampaignEngineSerial(b *testing.B) { benchCampaignEngine(b, 1) }

// BenchmarkCampaignEngineParallel runs the default engine (GOMAXPROCS
// workers). Results are bit-identical to the serial engine; only wall
// time may differ (see the determinism contract, DESIGN.md §5).
func BenchmarkCampaignEngineParallel(b *testing.B) { benchCampaignEngine(b, 0) }

// --- Micro-benchmarks of the core machinery ---

// BenchmarkMetricsEvaluate measures raw output comparison.
func BenchmarkMetricsEvaluate(b *testing.B) {
	golden := gridOf(512, 1.0)
	observed := gridOf(512, 1.0)
	observed.Data()[1000] = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := metrics.Evaluate(golden, observed)
		if rep.Count() != 1 {
			b.Fatal("unexpected mismatch count")
		}
	}
}

// BenchmarkLocalityClassify measures the spatial classifier on a large
// mismatch set.
func BenchmarkLocalityClassify(b *testing.B) {
	rep := &metrics.Report{Dims: gridDims(1024), TotalElements: 1024 * 1024}
	rng := xrand.New(1)
	for j := 0; j < 5000; j++ {
		rep.Mismatches = append(rep.Mismatches, metrics.Mismatch{
			Coord: gridCoord(rng.Intn(1024), rng.Intn(1024)),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep.Locality() == metrics.NoPattern {
			b.Fatal("no pattern")
		}
	}
}

// BenchmarkDGEMMInjection measures one delta-propagated faulty execution
// at a paper-scale input.
func BenchmarkDGEMMInjection(b *testing.B) {
	kern := dgemm.New(2048)
	dev := k40.New()
	inj := arch.Injection{
		Scope: arch.ScopeCacheLine, Words: 16, Lines: 2,
		Flip: fault.FlipSpec{Field: floatbits.AnyField, Bits: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = kern.RunInjected(dev, inj, xrand.New(uint64(i)))
	}
}

// BenchmarkABFTAudit measures a checksum audit of a 512x512 product.
func BenchmarkABFTAudit(b *testing.B) {
	cs := abft.Attach(gridOf(512, 1.5))
	cs.C.Set2(100, 100, 99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clone := abft.Attach(cs.C)
		_ = clone.Audit(0)
	}
}

// helpers for benches

func gridOf(side int, v float64) *grid.Grid {
	g := grid.New2D(side, side)
	g.Fill(v)
	return g
}

func gridDims(side int) grid.Dims { return grid.Dims{X: side, Y: side, Z: 1} }

func gridCoord(x, y int) grid.Coord { return grid.Coord{X: x, Y: y} }
