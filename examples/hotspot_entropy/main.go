// Example hotspot_entropy: show the stencil's natural error dissipation
// (§V-C) and evaluate the entropy-based detector the paper proposes for
// widespread stencil corruption.
//
// An early strike is smoothed toward equilibrium by the same coefficients
// that smooth heat; a late strike survives to the output. The entropy
// monitor compares the output's value-distribution disorder against the
// golden run's.
package main

import (
	"fmt"
	"os"

	"radcrit"
	"radcrit/internal/arch"
	"radcrit/internal/detect"
	"radcrit/internal/fault"
	"radcrit/internal/floatbits"
	"radcrit/internal/kernels/hotspot"
	"radcrit/internal/xrand"
)

func main() {
	const (
		side  = 128
		iters = 300
	)
	fmt.Printf("HotSpot %dx%d, %d iterations: error dissipation and entropy detection\n\n", side, iters, iters)

	// Resolve the scenario by registry name — the same spec a plan file
	// or a -kernel flag would use. The dense-output analyses below need
	// the concrete HotSpot type.
	k, err := radcrit.NewKernel(fmt.Sprintf("hotspot:%dx%d", side, iters))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hotspot_entropy: %v\n", err)
		os.Exit(1)
	}
	kern := k.(*hotspot.Kernel)
	dev, err := radcrit.NewDevice("k40")
	if err != nil {
		fmt.Fprintf(os.Stderr, "hotspot_entropy: %v\n", err)
		os.Exit(1)
	}
	goldenEntropy := hotspot.Entropy(kern.GoldenFinal(), 64)
	fmt.Printf("golden output entropy: %.4f bits\n\n", goldenEntropy)

	// Sweep the strike time: the same corruption injected earlier has
	// longer to dissipate.
	fmt.Println("strike-time sweep (identical 8-cell line corruption):")
	fmt.Println("  when   incorrect  mean-rel-err  above-2pct")
	for _, when := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		inj := arch.Injection{
			Scope: arch.ScopeCacheLine,
			When:  when,
			Words: 8, // 16 float32 cells
			Lines: 2,
			Flip:  fault.FlipSpec{Field: floatbits.Exponent, Bits: 1},
		}
		rep := kern.RunInjected(dev, inj, xrand.New(5))
		fmt.Printf("  %.2f   %9d  %11.4g%%  %12d\n",
			when, rep.Count(), rep.MeanRelErrPct(1e6), rep.Filter(2).Count())
	}
	fmt.Println()

	// Entropy detector over a small campaign. The interesting targets are
	// the *widespread* corruptions: many slightly-wrong elements that the
	// 2% filter would individually wave through but whose accumulated
	// error matters (§V-C) — exactly what a per-element check misses and
	// a distribution-level monitor can see.
	fmt.Println("entropy detector over widespread SDCs (>=100 corrupted elements):")
	var stats detect.CoverageStats
	rng := xrand.New(11)
	prof := kern.Profile(dev)
	for i := 0; i < 800; i++ {
		sub := rng.Split(uint64(i))
		syn := dev.ResolveStrike(prof, fault.Strike{When: sub.Float64(), Energy: 1}, sub)
		if syn.Outcome != fault.SDC {
			continue
		}
		// Identical injection RNG streams so the dense run and the report
		// describe the same corrupted execution.
		golden, faulty := kern.RunDense(dev, syn.Injection, rng.Split(uint64(i)+1_000_000))
		rep := kern.RunInjected(dev, syn.Injection, rng.Split(uint64(i)+1_000_000))
		if rep.Count() < 100 {
			continue // not widespread
		}
		r := detect.EntropyCheck(hotspot.Entropy(golden, 256), hotspot.Entropy(faulty, 256), 1e-5)
		stats.Add(r.Fired)
	}
	fmt.Printf("  widespread SDCs evaluated: %d\n", stats.Evaluated)
	fmt.Printf("  detected by entropy shift: %d (%.0f%% coverage)\n",
		stats.Detected, 100*stats.Coverage())
	fmt.Println()
	fmt.Println("The paper (§V-C) notes stencil errors dissipate into small per-element")
	fmt.Println("disparities with significant accumulated error — neighbour checks miss")
	fmt.Println("them, while a system-level entropy monitor can catch the spread cases.")
}
