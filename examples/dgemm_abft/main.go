// Example dgemm_abft: use the spatial-locality metric to predict how much
// of each device's DGEMM error rate Algorithm-Based Fault Tolerance can
// remove (§III, §V-A), then demonstrate checksum detection and correction
// on live corrupted products.
//
// The paper's point: ABFT corrects single and line errors in linear time
// but not square/random patterns — so the locality profile of a device
// decides whether ABFT is worth deploying.
package main

import (
	"context"
	"fmt"
	"os"

	"radcrit"
	"radcrit/internal/abft"
	"radcrit/internal/grid"
	"radcrit/internal/metrics"
	"radcrit/internal/xrand"
)

func main() {
	const (
		strikes = 400
		seed    = 7
	)

	fmt.Println("ABFT vs spatial locality of DGEMM radiation errors")
	fmt.Println()

	plan := radcrit.NewPlan(seed, strikes).
		Named("dgemm-abft").
		WithKernelOnDevices("dgemm:256", "k40", "phi")
	res, err := radcrit.NewBatchRunner().Run(context.Background(), plan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgemm_abft: %v\n", err)
		os.Exit(1)
	}

	for _, cell := range res.Cells {
		r := cell.Result
		cov := abft.EvaluateCoverage(r.Reports)
		fmt.Printf("%s: %d SDCs -> %d correctable (single/line), %d detect-only (square/random)\n",
			r.Device, len(r.Reports), cov.Correctable, cov.DetectOnly)
		fmt.Printf("  ABFT would remove %.0f%% of this device's DGEMM errors\n",
			100*cov.CorrectableFraction())
	}
	fmt.Println()

	// Live corruption/repair cycle on a checksummed product.
	fmt.Println("live checksummed-product demo:")
	rng := xrand.New(3)
	a, b := randomMatrix(96, rng), randomMatrix(96, rng)
	truth := abft.Multiply(a, b).C

	scenarios := []struct {
		name    string
		corrupt func(c *grid.Grid)
	}{
		{"single flipped element", func(c *grid.Grid) {
			c.Set2(10, 10, c.At2(10, 10)*8)
		}},
		{"line of 12 elements", func(c *grid.Grid) {
			for j := 4; j < 16; j++ {
				c.Set2(j, 40, c.At2(j, 40)+1)
			}
		}},
		{"4x4 square block", func(c *grid.Grid) {
			for i := 20; i < 24; i++ {
				for j := 20; j < 24; j++ {
					c.Set2(j, i, c.At2(j, i)*2)
				}
			}
		}},
	}

	for _, sc := range scenarios {
		cs := abft.Attach(truth)
		sc.corrupt(cs.C)
		before := metrics.Evaluate(truth, cs.C)
		audit := cs.Audit(0)
		after := metrics.Evaluate(truth, cs.C).Filter(1e-6)
		fmt.Printf("  %-24s locality=%-7v detected=%v corrected=%d residual=%d uncorrectable=%v\n",
			sc.name, before.Locality(), audit.Detected, audit.Corrected,
			after.Count(), audit.Uncorrectable)
	}
}

func randomMatrix(n int, rng *xrand.RNG) *grid.Grid {
	g := grid.New2D(n, n)
	for i := range g.Data() {
		g.Data()[i] = 0.5 + 1.5*rng.Float64()
	}
	return g
}
