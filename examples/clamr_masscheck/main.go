// Example clamr_masscheck: corrupt the shallow-water dam-break simulation
// mid-flight, watch the error wave spread (§V-D, Fig. 9), and evaluate the
// mass-conservation detector that real CLAMR ships (82% fault coverage in
// the paper's reference [4]).
package main

import (
	"fmt"
	"os"
	"strings"

	"radcrit"
	"radcrit/internal/arch"
	"radcrit/internal/detect"
	"radcrit/internal/fault"
	"radcrit/internal/floatbits"
	"radcrit/internal/kernels/clamr"
	"radcrit/internal/xrand"
)

func main() {
	const (
		side  = 96
		steps = 150
	)
	fmt.Printf("CLAMR dam break %dx%d, %d steps: error waves and the mass check\n\n", side, steps, steps)

	// Resolve the scenario by registry name — the same spec a plan file
	// or a -kernel flag would use. The mass-check analyses below need the
	// concrete CLAMR type.
	k, err := radcrit.NewKernel(fmt.Sprintf("clamr:%dx%d", side, steps))
	if err != nil {
		fmt.Fprintf(os.Stderr, "clamr_masscheck: %v\n", err)
		os.Exit(1)
	}
	kern := k.(*clamr.Kernel)
	dev, err := radcrit.NewDevice("phi")
	if err != nil {
		fmt.Fprintf(os.Stderr, "clamr_masscheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("golden total water volume: %.1f (conserved to FP accuracy)\n", kern.GoldenMass())
	fmt.Printf("mean refined-cell fraction (AMR): %.1f%%\n\n", 100*kern.RefinedFraction())

	// One corrupted state word at 40% progress: the wave of incorrect
	// elements grows as the execution continues. Sweep seeds to show both
	// faces of the detector: a mass-violating corruption (height word,
	// detected) and a mass-conserving one (momentum word, escapes).
	inj := arch.Injection{
		Scope: arch.ScopeOutputWord,
		When:  0.4,
		Words: 1, Lines: 1, Tasks: 1,
		Flip: fault.FlipSpec{Field: floatbits.Exponent, Bits: 1},
	}
	var shown *radcrit.Report
	var detected, escaped bool
	for seed := uint64(1); seed < 60 && (!detected || !escaped); seed++ {
		rep, det := kern.RunInjectedDetailed(dev, inj, xrand.New(seed))
		if rep.Count() == 0 {
			continue
		}
		switch {
		case det.MassCheckFired && !detected:
			detected = true
			shown = rep
			fmt.Println("height-word corruption (mass violated):")
			fmt.Printf("  incorrect elements at output: %d of %d (%.1f%% of the mesh)\n",
				rep.Count(), rep.TotalElements, 100*rep.CorruptedFraction())
			fmt.Printf("  locality: %v (the paper: square errors amount to 99%%)\n", rep.Locality())
			fmt.Printf("  max mass drift: %.3g relative (threshold %.3g) -> DETECTED\n\n",
				det.MaxMassDriftRel, kern.MassCheckThresholdRel())
		case !det.MassCheckFired && !escaped && rep.Filter(2).Count() > 0:
			escaped = true
			fmt.Println("momentum-word corruption (mass conserved):")
			fmt.Printf("  incorrect elements at output: %d (%d above 2%%)\n",
				rep.Count(), rep.Filter(2).Count())
			fmt.Printf("  max mass drift: %.3g relative -> ESCAPES the mass check\n\n",
				det.MaxMassDriftRel)
		}
	}
	rep := shown

	// Render the error wave as a Fig.9-style map.
	fmt.Println("error locality map (Fig. 9 style):")
	renderMap(rep, side)

	// Detector coverage over a campaign of critical SDCs.
	fmt.Println("\nmass-check coverage over a simulated campaign:")
	var stats detect.CoverageStats
	rng := xrand.New(17)
	prof := kern.Profile(dev)
	for i := 0; i < 400; i++ {
		sub := rng.Split(uint64(i))
		syn := dev.ResolveStrike(prof, fault.Strike{When: sub.Float64(), Energy: 1}, sub)
		if syn.Outcome != fault.SDC {
			continue
		}
		r, d := kern.RunInjectedDetailed(dev, syn.Injection, sub)
		if r.Filter(2).Count() == 0 {
			continue
		}
		stats.Add(d.MassCheckFired)
	}
	fmt.Printf("  critical SDCs: %d, detected: %d -> %.0f%% coverage (paper: 82%%)\n",
		stats.Evaluated, stats.Detected, 100*stats.Coverage())
	fmt.Println("\nMomentum-only corruption conserves mass and slips past the check —")
	fmt.Println("exactly the escape that keeps coverage below 100% (§V-D).")
}

func renderMap(rep *radcrit.Report, side int) {
	const cols = 48
	rows := cols
	marked := make([][]bool, side)
	for i := range marked {
		marked[i] = make([]bool, side)
	}
	for _, m := range rep.Mismatches {
		marked[m.Coord.Y][m.Coord.X] = true
	}
	for ry := 0; ry < rows; ry++ {
		var sb strings.Builder
		for rx := 0; rx < cols; rx++ {
			hit := false
			for y := ry * side / rows; y < (ry+1)*side/rows && !hit; y++ {
				for x := rx * side / cols; x < (rx+1)*side/cols; x++ {
					if marked[y][x] {
						hit = true
						break
					}
				}
			}
			if hit {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		fmt.Printf("  %s\n", sb.String())
	}
}
