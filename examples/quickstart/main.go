// Quickstart: define a small beam campaign of DGEMM on both devices as a
// declarative plan, run it through a Runner, then apply the paper's
// criticality methodology — incorrect elements, mean relative error,
// spatial locality — under the 2% imprecision filter, and compare the
// architectures.
package main

import (
	"context"
	"fmt"
	"os"

	"radcrit"
)

func main() {
	const (
		strikes = 300
		seed    = 42
	)

	fmt.Println("radcrit quickstart: DGEMM under simulated neutron beam")
	fmt.Println()

	// A campaign is data: cells named by registry specs, plus the
	// statistical configuration. The same plan serialises to JSON
	// (radcrit.SavePlan) and runs from any cmd/ tool via -plan.
	plan := radcrit.NewPlan(seed, strikes).
		Named("quickstart").
		WithKernelOnDevices("dgemm:256", "k40", "phi").
		WithThresholds(0, radcrit.DefaultThresholdPct)

	res, err := radcrit.NewBatchRunner().Run(context.Background(), plan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}

	profiles := map[string]*radcrit.Criticality{}
	for _, cell := range res.Cells {
		r := cell.Result
		fmt.Printf("%s: %d strikes -> %d masked, %d SDC, %d crash, %d hang (SDC:DUE %.2f)\n",
			r.Device, r.Strikes,
			r.Tally.Masked, r.Tally.SDC, r.Tally.Crash, r.Tally.Hang,
			r.Tally.SDCToDUERatio())

		// The paper's DGEMM figures cap per-element relative errors at
		// 100% for readability (Fig. 2); do the same here.
		opts := radcrit.DefaultAnalysisOptions()
		opts.CapPct = 100
		crit := radcrit.Analyze(r.Reports, opts)
		fmt.Print(crit)
		fmt.Println()

		profiles[r.Device] = crit

		// Render the Figure-3-style locality breakdown for this device.
		radcrit.RenderLocality(os.Stdout, r, radcrit.DefaultThresholdPct)
		fmt.Println()
	}

	fmt.Println("cross-architecture verdict (§V-E):")
	fmt.Println(radcrit.Verdict("K40", profiles["K40"], "XeonPhi", profiles["XeonPhi"]))
	fmt.Println()

	// The paper's proposed follow-up (§VI): find the resources behind the
	// critical errors and harden only those. The batch runner retained
	// the K40 cell's full result, reports included.
	fmt.Print(radcrit.AdviseHardening(res.Cells[0].Result, radcrit.DefaultThresholdPct))
}
