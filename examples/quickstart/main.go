// Quickstart: simulate a small beam campaign of DGEMM on the K40 model,
// then apply the paper's criticality methodology — incorrect elements,
// mean relative error, spatial locality — under the 2% imprecision filter,
// and compare against the Xeon Phi.
package main

import (
	"fmt"
	"os"

	"radcrit"
)

func main() {
	const (
		matrixSide = 256
		strikes    = 300
		seed       = 42
	)

	fmt.Println("radcrit quickstart: DGEMM under simulated neutron beam")
	fmt.Println()

	kern := radcrit.NewDGEMM(matrixSide)
	cfg := radcrit.CampaignConfig(seed, strikes)

	profiles := map[string]*radcrit.Criticality{}
	for _, dev := range radcrit.Devices() {
		res := radcrit.RunCampaign(dev, kern, cfg)
		fmt.Printf("%s: %d strikes -> %d masked, %d SDC, %d crash, %d hang (SDC:DUE %.2f)\n",
			dev.ShortName(), res.Strikes,
			res.Tally.Masked, res.Tally.SDC, res.Tally.Crash, res.Tally.Hang,
			res.Tally.SDCToDUERatio())

		// The paper's DGEMM figures cap per-element relative errors at
		// 100% for readability (Fig. 2); do the same here.
		opts := radcrit.DefaultAnalysisOptions()
		opts.CapPct = 100
		crit := radcrit.Analyze(res.Reports, opts)
		fmt.Print(crit)
		fmt.Println()

		profiles[dev.ShortName()] = crit

		// Render the Figure-3-style locality breakdown for this device.
		radcrit.RenderLocality(os.Stdout, res, radcrit.DefaultThresholdPct)
		fmt.Println()
	}

	fmt.Println("cross-architecture verdict (§V-E):")
	fmt.Println(radcrit.Verdict("K40", profiles["K40"], "XeonPhi", profiles["XeonPhi"]))
	fmt.Println()

	// The paper's proposed follow-up (§VI): find the resources behind the
	// critical errors and harden only those.
	res := radcrit.RunCampaign(radcrit.K40(), kern, cfg)
	fmt.Print(radcrit.AdviseHardening(res, radcrit.DefaultThresholdPct))
}
