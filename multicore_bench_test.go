// BenchmarkCampaignMulticore is the honest multicore record behind
// BENCH_campaign.json's "multicore" section: whole uncached campaign
// cells (RunFresh, so no cross-run memoisation) at worker counts
// {1, 2, NumCPU}, for one cheap-strike kernel (DGEMM) and one
// expensive-strike kernel (LavaMD). Results are bit-identical across
// worker counts (DESIGN.md §5); only wall time may differ, so ns/op is
// the whole story.
//
// Regenerate the record with:
//
//	go test -bench=BenchmarkCampaignMulticore -benchtime=1x -run='^$' . \
//	  | go run ./cmd/benchguard -emit-multicore
//
// On a 1-core host every worker count collapses to the serial loop; the
// record only demonstrates scaling when regenerated on a >=4-core host,
// which is exactly why the emitting command is wired into CI.
package radcrit

import (
	"fmt"
	"runtime"
	"testing"

	"radcrit/internal/arch"
	"radcrit/internal/campaign"
	"radcrit/internal/k40"
	"radcrit/internal/kernels"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/kernels/lavamd"
)

// multicoreWorkerCounts returns {1, 2, NumCPU} deduplicated and sorted
// (a 1-core host measures only workers=1 and workers=2).
func multicoreWorkerCounts() []int {
	set := []int{1, 2, runtime.NumCPU()}
	var out []int
	for _, w := range set {
		dup := false
		for _, o := range out {
			dup = dup || o == w
		}
		if !dup {
			out = append(out, w)
		}
	}
	return out
}

func BenchmarkCampaignMulticore(b *testing.B) {
	cells := []struct {
		name    string
		dev     arch.Device
		kern    kernels.Kernel
		strikes int
	}{
		// Strike counts sized so one op costs roughly a second on the
		// reference 1-core host: enough strikes for the pool to matter,
		// small enough for -benchtime=1x CI smoke runs.
		{"DGEMM", k40.New(), dgemm.New(256), 6000},
		{"LavaMD", k40.New(), lavamd.New(4), 1500},
	}
	for _, c := range cells {
		for _, w := range multicoreWorkerCounts() {
			b.Run(fmt.Sprintf("%s/workers=%d", c.name, w), func(b *testing.B) {
				cfg := campaign.DefaultConfig(42, c.strikes)
				cfg.Workers = w
				// Warm with the full strike population: the golden handle's
				// lazy tables are built per box/row on first touch and shared
				// through the kernel instance, so a partial warm-up would
				// charge the first sub-benchmark for construction the later
				// ones inherit.
				campaign.RunFresh(c.dev, c.kern, cfg)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					campaign.RunFresh(c.dev, c.kern, cfg)
				}
			})
		}
	}
}
