// Command criticality re-analyses a campaign log with a chosen
// relative-error filter: the "third-party analysis" workflow the paper
// enables by publishing its raw corrupted outputs. Different consumers
// tolerate different imprecision (a seismic code accepts ~4% misfits,
// §II-B), so the same log yields different criticality profiles.
//
// Usage:
//
//	criticality [-threshold PCT] [-cap PCT] campaign.log [more.log...]
package main

import (
	"flag"
	"fmt"
	"os"

	"radcrit"
	"radcrit/internal/cli"
)

func main() {
	threshold := flag.Float64("threshold", radcrit.DefaultThresholdPct,
		"relative-error tolerance in percent (0 keeps every mismatch)")
	cap := flag.Float64("cap", 0, "per-element relative-error display cap in percent (0 = none)")
	showVersion := cli.VersionFlag(flag.CommandLine)
	flag.Parse()
	cli.ExitIfVersion(*showVersion)

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "criticality: no log files given")
		os.Exit(2)
	}

	opts := radcrit.AnalysisOptions{ThresholdPct: *threshold, CapPct: *cap}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			cli.Fatal("criticality", "%v", err)
		}
		l, err := radcrit.ParseLog(f)
		f.Close()
		if err != nil {
			cli.Fatal("criticality", "%s: %v", path, err)
		}
		c := radcrit.AnalyzeLog(l, opts)
		fmt.Printf("%s — %s %s %s (%d executions, %.1f beam hours)\n",
			path, l.Device, l.Kernel, l.Input, l.Executions, l.BeamHours)
		fmt.Print(c)
		fmt.Println()
	}
}
