// Command flakyproxy is a deliberately unreliable HTTP reverse proxy
// for exercising the fleet's failure handling outside the test suite —
// CI's fleet-chaos-smoke job routes real worker processes through it.
// Each request rolls a seeded lottery to be dropped (connection severed
// before forwarding), answered 503, killed mid-response (full
// Content-Length, half the body), or delayed. Fault tallies print on
// shutdown.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"radcrit/internal/fleet/chaostest"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8448", "listen address")
	target := flag.String("target", "", "backend base URL (required), e.g. http://127.0.0.1:8447")
	seed := flag.Uint64("seed", 1, "fault lottery seed")
	drop := flag.Int("drop", 0, "drop one request in N (0 disables)")
	errRate := flag.Int("error", 0, "answer 503 to one request in N (0 disables)")
	kill := flag.Int("kill", 0, "kill one response in N mid-stream (0 disables)")
	delay := flag.Int("delay", 0, "delay one request in N (0 disables)")
	delayBy := flag.Duration("delay-by", 50*time.Millisecond, "stall injected by a delay fault")
	quiet := flag.Bool("quiet", false, "suppress the per-fault log lines")
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "flakyproxy: -target is required")
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "flakyproxy: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}
	p, err := chaostest.NewProxy(chaostest.ProxyOptions{
		Target:     *target,
		Addr:       *addr,
		Seed:       *seed,
		DropOneIn:  *drop,
		ErrorOneIn: *errRate,
		KillOneIn:  *kill,
		DelayOneIn: *delay,
		Delay:      *delayBy,
		Logf:       logf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("listening on %s, forwarding to %s (seed %d, 1-in-N rates: drop %d, error %d, kill %d, delay %d)",
		p.Addr(), *target, *seed, *drop, *errRate, *kill, *delay)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	p.Close()
	c := p.Counters()
	logger.Printf("done: forwarded %d, dropped %d, 503'd %d, killed %d, delayed %d",
		c.Forwarded, c.Drops, c.Errors, c.Kills, c.Delays)
}
