// Command abftscan explores ABFT coverage for DGEMM: it runs a campaign,
// classifies every SDC's spatial locality, reports the correctable share
// (single + line, §III/§V-A), and then demonstrates live correction on a
// dense checksummed product.
//
// Usage:
//
//	abftscan [-device k40|phi] [-size N] [-strikes N] [-seed S]
//	abftscan -plan plan.json   (every cell must be a dgemm kernel)
package main

import (
	"context"
	"flag"
	"fmt"

	"radcrit"
	"radcrit/internal/abft"
	"radcrit/internal/cli"
	"radcrit/internal/grid"
	"radcrit/internal/metrics"
	"radcrit/internal/xrand"
)

func main() {
	shared := cli.CampaignFlags{Device: "k40", Strikes: 400, Seed: 11, Scale: "test"}
	shared.Bind(flag.CommandLine, false)
	size := flag.Int("size", 256, "matrix side")
	showVersion := cli.VersionFlag(flag.CommandLine)
	flag.Parse()
	cli.ExitIfVersion(*showVersion)
	shared.Kernel = fmt.Sprintf("dgemm:%d", *size)

	plan, err := shared.ResolvePlan()
	if err != nil {
		cli.Fatal("abftscan", "%v", err)
	}
	for _, c := range plan.Cells {
		if name, _ := radcrit.SplitKernelSpec(c.Kernel); name != "dgemm" {
			cli.Fatal("abftscan", "ABFT coverage is a DGEMM analysis; plan cell %s/%s is not dgemm",
				c.Device, c.Kernel)
		}
	}

	res, err := radcrit.NewBatchRunner().Run(context.Background(), plan)
	if err != nil {
		cli.Fatal("abftscan", "%v", err)
	}
	for _, cell := range res.Cells {
		r := cell.Result
		cov := abft.EvaluateCoverage(r.Reports)
		fmt.Printf("ABFT coverage scan: DGEMM %s on %s, %d strikes, %d SDCs\n",
			r.Input, r.Device, r.Strikes, len(r.Reports))
		fmt.Printf("  correctable (single/line): %d\n", cov.Correctable)
		fmt.Printf("  detect-only (square/random): %d\n", cov.DetectOnly)
		fmt.Printf("  correctable fraction: %.0f%%\n", 100*cov.CorrectableFraction())
		fmt.Printf("  (paper §V-A: ABFT leaves 20-40%% of errors on the K40, 60-80%% on the Phi)\n\n")
	}

	// Live demonstration on a small checksummed product.
	demo()
}

// demo corrupts a checksummed product with a line error and repairs it.
func demo() {
	const n = 64
	rng := xrand.New(99)
	a, b := grid.New2D(n, n), grid.New2D(n, n)
	for i := range a.Data() {
		a.Data()[i] = 0.5 + 1.5*rng.Float64()
		b.Data()[i] = 0.5 + 1.5*rng.Float64()
	}
	cs := abft.Multiply(a, b)
	truth := cs.C.Clone()

	// A line error: 8 adjacent elements of one row corrupted.
	for j := 10; j < 18; j++ {
		cs.C.Set2(j, 20, cs.C.At2(j, 20)*2)
	}
	before := metrics.Evaluate(truth, cs.C)
	audit := cs.Audit(0)
	after := metrics.Evaluate(truth, cs.C)

	fmt.Printf("live audit demo (%dx%d product, 8-element line error):\n", n, n)
	fmt.Printf("  before: %d corrupted elements (%v locality)\n", before.Count(), before.Locality())
	fmt.Printf("  audit:  detected=%v corrected=%d uncorrectable=%v\n",
		audit.Detected, audit.Corrected, audit.Uncorrectable)
	fmt.Printf("  after:  %d corrupted elements above 1e-6%% relative\n",
		after.Filter(1e-6).Count())
}
