// Command abftscan explores ABFT coverage for DGEMM: it runs a campaign,
// classifies every SDC's spatial locality, reports the correctable share
// (single + line, §III/§V-A), and then demonstrates live correction on a
// dense checksummed product.
//
// Usage:
//
//	abftscan [-device k40|phi] [-size N] [-strikes N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"radcrit"
	"radcrit/internal/abft"
	"radcrit/internal/grid"
	"radcrit/internal/metrics"
	"radcrit/internal/xrand"
)

func main() {
	deviceFlag := flag.String("device", "k40", "device: k40 or phi")
	size := flag.Int("size", 256, "matrix side")
	strikes := flag.Int("strikes", 400, "strikes to simulate")
	seed := flag.Uint64("seed", 11, "campaign seed")
	flag.Parse()

	var dev radcrit.Device
	switch *deviceFlag {
	case "k40":
		dev = radcrit.K40()
	case "phi":
		dev = radcrit.XeonPhi()
	default:
		fmt.Fprintf(os.Stderr, "abftscan: unknown device %q\n", *deviceFlag)
		os.Exit(2)
	}

	kern := radcrit.NewDGEMM(*size)
	res := radcrit.RunCampaign(dev, kern, radcrit.CampaignConfig(*seed, *strikes))
	cov := abft.EvaluateCoverage(res.Reports)

	fmt.Printf("ABFT coverage scan: DGEMM %s on %s, %d strikes, %d SDCs\n",
		kern.InputLabel(), dev.ShortName(), *strikes, len(res.Reports))
	fmt.Printf("  correctable (single/line): %d\n", cov.Correctable)
	fmt.Printf("  detect-only (square/random): %d\n", cov.DetectOnly)
	fmt.Printf("  correctable fraction: %.0f%%\n", 100*cov.CorrectableFraction())
	fmt.Printf("  (paper §V-A: ABFT leaves 20-40%% of errors on the K40, 60-80%% on the Phi)\n\n")

	// Live demonstration on a small checksummed product.
	demo()
}

// demo corrupts a checksummed product with a line error and repairs it.
func demo() {
	const n = 64
	rng := xrand.New(99)
	a, b := grid.New2D(n, n), grid.New2D(n, n)
	for i := range a.Data() {
		a.Data()[i] = 0.5 + 1.5*rng.Float64()
		b.Data()[i] = 0.5 + 1.5*rng.Float64()
	}
	cs := abft.Multiply(a, b)
	truth := cs.C.Clone()

	// A line error: 8 adjacent elements of one row corrupted.
	for j := 10; j < 18; j++ {
		cs.C.Set2(j, 20, cs.C.At2(j, 20)*2)
	}
	before := metrics.Evaluate(truth, cs.C)
	audit := cs.Audit(0)
	after := metrics.Evaluate(truth, cs.C)

	fmt.Printf("live audit demo (%dx%d product, 8-element line error):\n", n, n)
	fmt.Printf("  before: %d corrupted elements (%v locality)\n", before.Count(), before.Locality())
	fmt.Printf("  audit:  detected=%v corrected=%d uncorrectable=%v\n",
		audit.Detected, audit.Corrected, audit.Uncorrectable)
	fmt.Printf("  after:  %d corrupted elements above 1e-6%% relative\n",
		after.Filter(1e-6).Count())
}
