// Command benchguard gates CI on the strike hot path's allocation budget:
// it reads `go test -bench -benchmem` output on stdin, compares each
// benchmark's allocs/op against the baselines recorded in
// BENCH_campaign.json (strike_hot_path.benchmarks.<name>.allocs_op), and
// exits non-zero when any benchmark regresses past -max-factor times its
// baseline or a baselined benchmark is missing from the run. Beyond the
// standard library it depends only on the shared cli version helper, so
// the CI job stays a plain `go run ./cmd/benchguard`.
//
//	go test -bench='BenchmarkStrike|BenchmarkInjected' -benchmem -run='^$' . |
//	    go run ./cmd/benchguard -baseline BENCH_campaign.json -max-factor 2
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"radcrit/internal/cli"
)

// baselineFile mirrors the slice of BENCH_campaign.json the guard reads.
type baselineFile struct {
	StrikeHotPath struct {
		Benchmarks map[string]struct {
			AllocsOp float64 `json:"allocs_op"`
		} `json:"benchmarks"`
	} `json:"strike_hot_path"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_campaign.json", "JSON `file` holding strike_hot_path.benchmarks baselines")
	maxFactor := flag.Float64("max-factor", 2, "fail when allocs/op exceeds factor x baseline")
	showVersion := cli.VersionFlag(flag.CommandLine)
	flag.Parse()
	cli.ExitIfVersion(*showVersion)

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parse baseline %s: %v", *baselinePath, err)
	}
	if len(base.StrikeHotPath.Benchmarks) == 0 {
		fatal("%s has no strike_hot_path.benchmarks section", *baselinePath)
	}

	got := parseBenchOutput(os.Stdin)
	failed := false
	names := make([]string, 0, len(base.StrikeHotPath.Benchmarks))
	for name := range base.StrikeHotPath.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.StrikeHotPath.Benchmarks[name]
		allocs, ok := got[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: baselined benchmark missing from bench output\n", name)
			failed = true
			continue
		}
		limit := want.AllocsOp * *maxFactor
		if allocs > limit {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: %.1f allocs/op exceeds %.1f (baseline %.1f x factor %.1f)\n",
				name, allocs, limit, want.AllocsOp, *maxFactor)
			failed = true
			continue
		}
		fmt.Printf("benchguard: ok %s: %.1f allocs/op (limit %.1f)\n", name, allocs, limit)
	}
	if failed {
		os.Exit(1)
	}
}

// parseBenchOutput extracts allocs/op per benchmark from `go test -bench
// -benchmem` text. Benchmark names are normalised by stripping the
// "Benchmark" prefix and the -GOMAXPROCS suffix.
func parseBenchOutput(f *os.File) map[string]float64 {
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "allocs/op" {
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					out[name] = v
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal("read bench output: %v", err)
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
