// Command benchguard gates CI on the strike hot path's performance
// budgets: it reads `go test -bench -benchmem` output on stdin and
// compares each benchmark against the baselines recorded in
// BENCH_campaign.json (strike_hot_path.benchmarks.<name>).
//
// Two budgets are enforced:
//
//   - allocs/op against allocs_op, failing past -max-factor (default 2)
//     times baseline. Allocation counts are deterministic, so this guard
//     runs on any host.
//   - ns/op against ns_op, failing past -ns-factor (default 1.5) times
//     baseline. Wall time is only comparable on hardware resembling the
//     baseline host, so the ns guard is skipped (with a note) whenever
//     runtime.NumCPU() differs from the recorded host.cores.
//
// A baselined benchmark missing from the run always fails. Beyond the
// standard library the tool depends only on the shared cli version
// helper, so the CI job stays a plain `go run ./cmd/benchguard`.
//
//	go test -bench='BenchmarkStrike|BenchmarkInjected' -benchmem -run='^$' . |
//	    go run ./cmd/benchguard -baseline BENCH_campaign.json
//
// -emit-multicore switches the tool into a record emitter instead of a
// guard: it reads `go test -bench=BenchmarkCampaignMulticore` output and
// prints the `multicore` JSON record for BENCH_campaign.json — per-cell
// ns/op by worker count plus the parallel speedup at the highest worker
// count, stamped with this host's shape so a 1-core record can never be
// mistaken for a scaling demonstration.
//
//	go test -bench=BenchmarkCampaignMulticore -benchtime=1x -run='^$' . |
//	    go run ./cmd/benchguard -emit-multicore
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"radcrit/internal/cli"
)

// baselineFile mirrors the slice of BENCH_campaign.json the guard reads.
type baselineFile struct {
	Host struct {
		Cores int `json:"cores"`
	} `json:"host"`
	StrikeHotPath struct {
		Benchmarks map[string]struct {
			NsOp     float64 `json:"ns_op"`
			AllocsOp float64 `json:"allocs_op"`
		} `json:"benchmarks"`
	} `json:"strike_hot_path"`
}

// benchResult is one parsed benchmark line.
type benchResult struct {
	NsOp      float64
	AllocsOp  float64
	HasAllocs bool
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_campaign.json", "JSON `file` holding strike_hot_path.benchmarks baselines")
	maxFactor := flag.Float64("max-factor", 2, "fail when allocs/op exceeds factor x baseline")
	nsFactor := flag.Float64("ns-factor", 1.5, "fail when ns/op exceeds factor x baseline (skipped when host cores differ from baseline)")
	emitMulticore := flag.Bool("emit-multicore", false, "emit the BENCH_campaign.json multicore record from BenchmarkCampaignMulticore output instead of guarding")
	showVersion := cli.VersionFlag(flag.CommandLine)
	flag.Parse()
	cli.ExitIfVersion(*showVersion)

	got := parseBenchOutput(os.Stdin)

	if *emitMulticore {
		emitMulticoreRecord(got)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parse baseline %s: %v", *baselinePath, err)
	}
	if len(base.StrikeHotPath.Benchmarks) == 0 {
		fatal("%s has no strike_hot_path.benchmarks section", *baselinePath)
	}

	guardNs := base.Host.Cores == 0 || base.Host.Cores == runtime.NumCPU()
	if !guardNs {
		fmt.Printf("benchguard: note: host has %d cores, baseline recorded on %d — ns/op guard skipped, allocs/op still enforced\n",
			runtime.NumCPU(), base.Host.Cores)
	}

	failed := false
	names := make([]string, 0, len(base.StrikeHotPath.Benchmarks))
	for name := range base.StrikeHotPath.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.StrikeHotPath.Benchmarks[name]
		res, ok := got[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: baselined benchmark missing from bench output\n", name)
			failed = true
			continue
		}
		allocLimit := want.AllocsOp * *maxFactor
		if res.HasAllocs && res.AllocsOp > allocLimit {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: %.1f allocs/op exceeds %.1f (baseline %.1f x factor %.1f)\n",
				name, res.AllocsOp, allocLimit, want.AllocsOp, *maxFactor)
			failed = true
			continue
		}
		if guardNs && want.NsOp > 0 {
			nsLimit := want.NsOp * *nsFactor
			if res.NsOp > nsLimit {
				fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: %.0f ns/op exceeds %.0f (baseline %.0f x factor %.2f)\n",
					name, res.NsOp, nsLimit, want.NsOp, *nsFactor)
				failed = true
				continue
			}
		}
		fmt.Printf("benchguard: ok %s: %.1f allocs/op (limit %.1f), %.0f ns/op\n",
			name, res.AllocsOp, allocLimit, res.NsOp)
	}
	if failed {
		os.Exit(1)
	}
}

// multicoreRecord is the BENCH_campaign.json "multicore" section shape.
type multicoreRecord struct {
	Description string `json:"description"`
	Host        struct {
		Cores int    `json:"cores"`
		Go    string `json:"go"`
	} `json:"host"`
	Cells map[string]*multicoreCell `json:"cells"`
	Note  string                    `json:"note"`
}

type multicoreCell struct {
	NsOpByWorkers map[string]float64 `json:"ns_op_by_workers"`
	SpeedupX      float64            `json:"speedup_at_max_workers_x"`
}

// emitMulticoreRecord prints the multicore JSON record built from
// BenchmarkCampaignMulticore/<cell>/workers=<n> results.
func emitMulticoreRecord(got map[string]benchResult) {
	rec := multicoreRecord{
		Description: "Whole uncached campaign cells (campaign.RunFresh) at worker counts {1, 2, NumCPU}. Results are bit-identical across worker counts (DESIGN.md §5); ns/op is the whole story. Regenerate with: go test -bench=BenchmarkCampaignMulticore -benchtime=1x -run='^$' . | go run ./cmd/benchguard -emit-multicore",
		Cells:       map[string]*multicoreCell{},
	}
	rec.Host.Cores = runtime.NumCPU()
	rec.Host.Go = runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH
	const prefix = "CampaignMulticore/"
	for name, res := range got {
		rest, ok := strings.CutPrefix(name, prefix)
		if !ok {
			continue
		}
		cellName, workers, ok := strings.Cut(rest, "/workers=")
		if !ok {
			continue
		}
		cell := rec.Cells[cellName]
		if cell == nil {
			cell = &multicoreCell{NsOpByWorkers: map[string]float64{}}
			rec.Cells[cellName] = cell
		}
		cell.NsOpByWorkers[workers] = res.NsOp
	}
	if len(rec.Cells) == 0 {
		fatal("no BenchmarkCampaignMulticore results on stdin")
	}
	for _, cell := range rec.Cells {
		base := cell.NsOpByWorkers["1"]
		best := base
		for _, ns := range cell.NsOpByWorkers {
			if ns < best {
				best = ns
			}
		}
		if base > 0 && best > 0 {
			cell.SpeedupX = round2(base / best)
		}
	}
	if rec.Host.Cores == 1 {
		rec.Note = "recorded on a 1-core host: worker counts collapse to the serial loop, so speedup ~1x is expected and honest; regenerate on a >=4-core host to demonstrate scaling"
	} else {
		rec.Note = fmt.Sprintf("recorded on a %d-core host", rec.Host.Cores)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fatal("encode multicore record: %v", err)
	}
}

func round2(v float64) float64 {
	return float64(int(v*100+0.5)) / 100
}

// parseBenchOutput extracts ns/op and allocs/op per benchmark from
// `go test -bench [-benchmem]` text. Benchmark names are normalised by
// stripping the "Benchmark" prefix and the -GOMAXPROCS suffix.
func parseBenchOutput(f *os.File) map[string]benchResult {
	out := map[string]benchResult{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		res := out[name]
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsOp = v
			case "allocs/op":
				res.AllocsOp = v
				res.HasAllocs = true
			}
		}
		out[name] = res
	}
	if err := sc.Err(); err != nil {
		fatal("read bench output: %v", err)
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
