// Command radcritd is the campaign daemon: a long-lived service that
// accepts declarative campaign Plans over HTTP, schedules them on a
// priority/FIFO queue, streams them through the campaign engine with
// live progress, deduplicates identical cells through a persistent
// content-addressed result store, and survives restarts — in-flight
// cells checkpoint continuously and are resumed from the last #CHK
// record with bit-identical final summaries.
//
//	radcritd -addr 127.0.0.1:8447 -state ./radcritd-state
//
// Submit the same JSON plans the CLI tools take:
//
//	curl -X POST --data-binary @plan.json http://127.0.0.1:8447/v1/jobs
//	curl http://127.0.0.1:8447/v1/jobs/<id>          # status
//	curl http://127.0.0.1:8447/v1/jobs/<id>/result   # summaries
//	curl http://127.0.0.1:8447/v1/jobs/<id>/events   # SSE progress
//
// SIGINT/SIGTERM drain gracefully: running jobs stop at their next chunk
// boundary with their checkpoint logs flushed, and a restarted daemon on
// the same -state directory resumes them.
//
// -oneshot runs a plan in-process through the same engine and prints the
// result in the API's JSON shape — the comparison form CI uses to assert
// that daemon results equal direct StreamRunner runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"radcrit/internal/api"
	"radcrit/internal/campaign"
	"radcrit/internal/cli"
	"radcrit/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8447", "listen address")
	state := flag.String("state", "radcritd-state", "state `dir`: job records, checkpoint logs, result store")
	executors := flag.Int("executors", 2, "jobs executed concurrently")
	storeCapMB := flag.Int64("store-cap-mb", 0, "result-store size cap in MiB before LRU eviction (0 = uncapped)")
	maxJobs := flag.Int("max-jobs", 0, "job records retained before the oldest finished jobs are pruned (0 = default 1024)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "how long a shutdown waits for in-flight chunks to checkpoint")
	oneshot := flag.String("oneshot", "", "run the plan `file` in-process and print the result JSON (no daemon)")
	showVersion := cli.VersionFlag(flag.CommandLine)
	flag.Parse()
	cli.ExitIfVersion(*showVersion)

	if *oneshot != "" {
		runOneshot(*oneshot)
		return
	}

	logger := log.New(os.Stderr, "radcritd: ", log.LstdFlags)
	m, err := service.New(service.Options{
		StateDir:  *state,
		Executors: *executors,
		StoreCap:  *storeCapMB << 20,
		MaxJobs:   *maxJobs,
	})
	if err != nil {
		logger.Fatal(err)
	}
	m.Start()

	srv := &http.Server{Addr: *addr, Handler: api.New(m, cli.Version())}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Printf("%s", cli.Version())
	logger.Printf("serving on http://%s (state: %s, executors: %d)", *addr, *state, *executors)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Printf("%v: draining (in-flight jobs checkpoint and re-queue; "+
			"restart on the same -state to resume)", sig)
	case err := <-errc:
		logger.Printf("server: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if err := m.Drain(ctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	logger.Printf("drained cleanly")
}

// runOneshot executes a plan in-process through StreamRunner and prints
// the result in the daemon's wire shape.
func runOneshot(path string) {
	plan, err := cli.LoadPlanFile(path)
	if err != nil {
		cli.Fatal("radcritd", "%v", err)
	}
	res, err := (&campaign.StreamRunner{}).Run(context.Background(), plan)
	if err != nil {
		cli.Fatal("radcritd", "%v", err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(service.ResultFromPlan("oneshot", res)); err != nil {
		cli.Fatal("radcritd", "%v", err)
	}
	fmt.Fprintln(os.Stderr, "radcritd: oneshot plan completed")
}
