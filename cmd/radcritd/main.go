// Command radcritd is the campaign daemon: a long-lived service that
// accepts declarative campaign Plans over HTTP, schedules them on a
// priority/FIFO queue, streams them through the campaign engine with
// live progress, deduplicates identical cells through a persistent
// content-addressed result store, and survives restarts — in-flight
// cells checkpoint continuously and are resumed from the last #CHK
// record with bit-identical final summaries.
//
//	radcritd -addr 127.0.0.1:8447 -state ./radcritd-state
//
// Submit the same JSON plans the CLI tools take:
//
//	curl -X POST --data-binary @plan.json http://127.0.0.1:8447/v1/jobs
//	curl http://127.0.0.1:8447/v1/jobs/<id>          # status
//	curl http://127.0.0.1:8447/v1/jobs/<id>/result   # summaries
//	curl http://127.0.0.1:8447/v1/jobs/<id>/events   # SSE progress
//
// SIGINT/SIGTERM drain gracefully: running jobs stop at their next chunk
// boundary with their checkpoint logs flushed, and a restarted daemon on
// the same -state directory resumes them.
//
// -fleet turns the daemon into a coordinator: a job's cells are sharded
// into lease-based work items that registered workers pull, heartbeat
// and complete; a lost worker's lease expires and its cell requeues from
// the last streamed checkpoint, and with zero healthy workers the daemon
// degrades to local execution. Fleet health is at GET /v1/fleet.
//
// -worker joins a coordinator's fleet instead of serving:
//
//	radcritd -worker -coordinator http://127.0.0.1:8447 -name w1
//
// -oneshot runs a plan in-process through the same engine and prints the
// result in the API's JSON shape — the comparison form CI uses to assert
// that daemon results equal direct StreamRunner runs.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"radcrit/internal/api"
	"radcrit/internal/campaign"
	"radcrit/internal/cli"
	"radcrit/internal/fleet"
	"radcrit/internal/remotestore"
	"radcrit/internal/scratch"
	"radcrit/internal/service"
	"radcrit/internal/store"
	"radcrit/internal/telemetry"
	"radcrit/internal/tenant"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8447", "listen address")
	state := flag.String("state", "radcritd-state", "state `dir`: job records, checkpoint logs, result store")
	executors := flag.Int("executors", 2, "jobs executed concurrently")
	storeCapMB := flag.Int64("store-cap-mb", 0, "result-store size cap in MiB before LRU eviction (0 = uncapped)")
	tenantsPath := flag.String("tenants", "", "tenant registry `file` (default <state>/tenants.json; missing file = default tenant only)")
	storeBackend := flag.String("store-backend", "disk", "result store backend: disk, mem, or a remote store base URL")
	maxJobs := flag.Int("max-jobs", 0, "job records retained before the oldest finished jobs are pruned (0 = default 1024)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "how long a shutdown waits for in-flight chunks to checkpoint")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request handler deadline (event streams are exempt)")
	oneshot := flag.String("oneshot", "", "run the plan `file` in-process and print the result JSON (no daemon)")
	fleetMode := flag.Bool("fleet", false, "coordinate a worker fleet: shard job cells into leases workers pull")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "fleet: lease lifetime without a heartbeat before a cell requeues")
	speculate := flag.Duration("speculate-after", 30*time.Second, "fleet: straggler threshold before a cell is speculatively re-dispatched")
	worker := flag.Bool("worker", false, "run as a fleet worker instead of serving")
	coordinator := flag.String("coordinator", "http://127.0.0.1:8447", "worker: coordinator base URL")
	name := flag.String("name", "", "worker: label shown in fleet health (default: hostname)")
	throttle := flag.Duration("throttle-chunk", 0, "worker: pause after each checkpoint chunk (pacing for chaos/failure drills)")
	metricsAddr := flag.String("metrics-addr", "", "worker: serve GET /metrics on this address (serve mode exposes /metrics on -addr)")
	var prof cli.ProfileFlags
	prof.Bind(flag.CommandLine)
	showVersion := cli.VersionFlag(flag.CommandLine)
	flag.Parse()
	cli.ExitIfVersion(*showVersion)

	if err := prof.Start(); err != nil {
		cli.Fatal("radcritd", "%v", err)
	}

	if *oneshot != "" {
		runOneshot(*oneshot)
		stopProfiles(&prof)
		return
	}
	if *worker {
		runWorker(*coordinator, *name, *throttle, *metricsAddr)
		stopProfiles(&prof)
		return
	}

	logger := log.New(os.Stderr, "radcritd: ", log.LstdFlags)
	metrics := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(metrics, "radcrit_build_info", cli.Version())
	scratch.RegisterMetrics(metrics)
	opts := service.Options{
		StateDir:  *state,
		Executors: *executors,
		StoreCap:  *storeCapMB << 20,
		MaxJobs:   *maxJobs,
		Metrics:   metrics,
	}
	tpath := *tenantsPath
	if tpath == "" {
		tpath = filepath.Join(*state, "tenants.json")
	}
	reg, err := tenant.Load(tpath)
	if err != nil {
		logger.Fatal(err)
	}
	opts.Tenants = reg
	switch {
	case *storeBackend == "" || *storeBackend == "disk":
		// nil Backend: the manager opens the disk store under -state.
	case *storeBackend == "mem":
		opts.Backend = store.NewMem()
	case strings.HasPrefix(*storeBackend, "http://"), strings.HasPrefix(*storeBackend, "https://"):
		opts.Backend = remotestore.New(*storeBackend)
	default:
		logger.Fatalf("unknown -store-backend %q (want disk, mem, or an http(s) URL)", *storeBackend)
	}
	var coord *fleet.Coordinator
	if *fleetMode {
		coord = fleet.NewCoordinator(fleet.Options{
			LeaseTTL:       *leaseTTL,
			SpeculateAfter: *speculate,
			Logf:           logger.Printf,
		})
		coord.RegisterMetrics(metrics)
		opts.Remote = coord
	}
	m, err := service.New(opts)
	if err != nil {
		logger.Fatal(err)
	}
	m.Start()

	root := http.NewServeMux()
	root.Handle("/", api.New(m, cli.Version(),
		api.WithRequestTimeout(*requestTimeout),
		api.WithMetrics(metrics)))
	if coord != nil {
		coord.Routes(root)
	}
	// The listener-side timeouts keep a slow or stalled client — a
	// half-open mobile connection, a worker dying mid-upload — from
	// pinning a connection (and its handler goroutine) forever. Write
	// deadlines stay per-request (via -request-timeout) because the SSE
	// event stream is legitimately long-lived.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           root,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Printf("%s", cli.Version())
	logger.Printf("serving on http://%s (state: %s, executors: %d, fleet: %v)", *addr, *state, *executors, *fleetMode)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
loop:
	for {
		select {
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				// Hot-reload tenants.json: weights re-shape the live queue
				// (effective on the next pop), rate limits and quotas apply
				// to the next request. A bad file keeps the old table.
				if err := m.ReloadTenants(); err != nil {
					logger.Printf("SIGHUP: tenants reload failed, old table kept: %v", err)
				} else {
					logger.Printf("SIGHUP: tenants reloaded from %s", tpath)
				}
				continue
			}
			logger.Printf("%v: draining (in-flight jobs checkpoint and re-queue; "+
				"restart on the same -state to resume)", sig)
			break loop
		case err := <-errc:
			logger.Printf("server: %v", err)
			break loop
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if err := m.Drain(ctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	if coord != nil {
		coord.Close()
	}
	stopProfiles(&prof)
	logger.Printf("drained cleanly")
}

// stopProfiles flushes -cpuprofile/-memprofile on the tool's clean exit
// paths (serve drain, oneshot, worker stop); error exits abandon them.
func stopProfiles(prof *cli.ProfileFlags) {
	if err := prof.Stop(); err != nil {
		cli.Fatal("radcritd", "%v", err)
	}
}

// runWorker joins a coordinator's fleet and processes leases until
// SIGINT/SIGTERM, abandoning any in-flight lease so its cell requeues
// immediately.
func runWorker(base, name string, throttle time.Duration, metricsAddr string) {
	logger := log.New(os.Stderr, "radcritd-worker: ", log.LstdFlags)
	if name == "" {
		name, _ = os.Hostname()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var em *service.EngineMetrics
	if metricsAddr != "" {
		metrics := telemetry.NewRegistry()
		telemetry.RegisterBuildInfo(metrics, "radcrit_build_info", cli.Version())
		scratch.RegisterMetrics(metrics)
		em = service.NewEngineMetrics(metrics)
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", metrics.Handler())
		msrv := &http.Server{Addr: metricsAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("metrics server: %v", err)
			}
		}()
		defer msrv.Close()
		logger.Printf("metrics on http://%s/metrics", metricsAddr)
	}
	w := fleet.NewWorker(fleet.WorkerOptions{Base: base, Name: name, Logf: logger.Printf, ThrottleChunk: throttle, Metrics: em})
	logger.Printf("%s", cli.Version())
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Fatal(err)
	}
	logger.Printf("stopped")
}

// runOneshot executes a plan in-process through StreamRunner and prints
// the result in the daemon's wire shape.
func runOneshot(path string) {
	plan, err := cli.LoadPlanFile(path)
	if err != nil {
		cli.Fatal("radcritd", "%v", err)
	}
	res, err := (&campaign.StreamRunner{}).Run(context.Background(), plan)
	if err != nil {
		cli.Fatal("radcritd", "%v", err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(service.ResultFromPlan("oneshot", res)); err != nil {
		cli.Fatal("radcritd", "%v", err)
	}
	fmt.Fprintln(os.Stderr, "radcritd: oneshot plan completed")
}
