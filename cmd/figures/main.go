// Command figures regenerates every table and figure of the paper's
// evaluation section (§V) from simulated beam campaigns.
//
// Usage:
//
//	figures [-scale test|paper] [-strikes N] [-seed S] [-only ID[,ID...]]
//	        [-stream] [-maxpoints N] [-plan plan.json]
//
// IDs: T1 T2 F2 F3 F4 F5 F6 F7 F8 F9 S1 S2 S3 S4 X1 (see DESIGN.md §3).
// The test scale runs the full set in tens of seconds; the paper scale
// uses Table II input sizes and takes considerably longer.
//
// -plan takes the campaign configuration (seed, strikes, workers,
// facility) from a declarative plan file instead of the flags; the
// artifact set and its cells still follow -scale/-only.
//
// -stream switches the aggregate artifacts (F2-F8, S1-S3) to the streaming
// engine (DESIGN.md §6): memory stays O(reducer state) per cell — scatter
// figures keep a -maxpoints reservoir — at the cost of the memo cache, so
// artifacts sharing cells recompute them. Use it when strike counts are
// too large for retained reports.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"radcrit/internal/arch"
	"radcrit/internal/campaign"
	"radcrit/internal/cli"
	"radcrit/internal/kernels"
	"radcrit/internal/registry"
	"radcrit/internal/report"
	"radcrit/internal/swinject"
)

func main() {
	scaleFlag := flag.String("scale", "test", "experiment scale: test or paper")
	strikes := flag.Int("strikes", 400, "strikes per experiment cell")
	seed := flag.Uint64("seed", 2017, "campaign seed")
	only := flag.String("only", "", "comma-separated artifact IDs (default: all)")
	stream := flag.Bool("stream", false, "use the bounded-memory streaming engine for aggregate artifacts")
	maxPoints := flag.Int("maxpoints", 4096, "scatter reservoir size per input in -stream mode")
	planPath := flag.String("plan", "", "JSON plan `file` supplying seed/strikes/workers/facility")
	var adaptiveF cli.AdaptiveFlags
	adaptiveF.Bind(flag.CommandLine)
	var prof cli.ProfileFlags
	prof.Bind(flag.CommandLine)
	var submit cli.SubmitFlags
	submit.Bind(flag.CommandLine)
	showVersion := cli.VersionFlag(flag.CommandLine)
	flag.Parse()
	cli.ExitIfVersion(*showVersion)
	if submit.Active() {
		// Client mode: run the -plan campaign on a radcritd daemon and
		// print its per-cell summaries. Artifact rendering needs retained
		// local results, so it stays an in-process concern.
		if *planPath == "" {
			cli.Fatal("figures", "-submit needs -plan (the daemon runs plan documents, not artifact sets)")
		}
		plan, err := cli.LoadPlanFile(*planPath)
		if err != nil {
			cli.Fatal("figures", "%v", err)
		}
		// The daemon honours early stopping per cell, so the adaptive
		// flags ride along in client mode.
		if err := adaptiveF.Apply(plan); err != nil {
			cli.Fatal("figures", "%v", err)
		}
		res, err := submit.Run(context.Background(), plan)
		if err != nil {
			cli.Fatal("figures", "%v", err)
		}
		cli.PrintJobSummaries(os.Stdout, res)
		return
	}
	if adaptiveF.Active() {
		fmt.Fprintln(os.Stderr, "figures: the adaptive flags only apply in -submit mode; local artifact generation uses fixed budgets so every figure reads the full strike count")
	}
	if err := prof.Start(); err != nil {
		cli.Fatal("figures", "start profiling: %v", err)
	}

	scale := campaign.TestScale
	switch *scaleFlag {
	case "test":
	case "paper":
		scale = campaign.PaperScale
	default:
		fmt.Fprintln(os.Stderr, "figures: -scale must be test or paper")
		os.Exit(2)
	}
	cfg := campaign.DefaultConfig(*seed, *strikes)
	if *planPath != "" {
		plan, err := cli.LoadPlanFile(*planPath)
		if err != nil {
			cli.Fatal("figures", "%v", err)
		}
		cfg = plan.Config()
		if cfg.Adaptive != nil {
			fmt.Fprintln(os.Stderr, "figures: ignoring the plan's adaptive spec; local artifact generation uses fixed budgets")
			cfg.Adaptive = nil
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	w := os.Stdout
	k40Dev := mustDevice("k40")
	phiDev := mustDevice("phi")

	// Evaluate every campaign cell the selected artifacts will read in one
	// concurrent matrix pass. The renderers below then hit the memo cache,
	// so output stays serial and ordered while the compute — the entire
	// device x kernel x input matrix — ran wide. Streaming mode skips the
	// warm-up: it deliberately retains nothing to share.
	if !*stream {
		prewarm(sel, scale, cfg, k40Dev, phiDev)
	}

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
	// scatter/locality pick the engine per -stream: the batch builders
	// (memoised, reports retained) or the streaming reducers.
	scatter := func(kernel string, capPct float64, cells []campaign.Cell, batch func() campaign.ScatterSeries) campaign.ScatterSeries {
		if !*stream {
			return batch()
		}
		s, err := campaign.ScatterStreaming(kernel, capPct, *maxPoints, cells, cfg)
		if err != nil {
			die(err)
		}
		return s
	}
	locality := func(kernel string, cells []campaign.Cell, batch func() campaign.LocalityFigure) campaign.LocalityFigure {
		if !*stream {
			return batch()
		}
		f, err := campaign.LocalityStreaming(kernel, cells, cfg, 2)
		if err != nil {
			die(err)
		}
		return f
	}

	if sel("T1") {
		header(w, "Table I — classification of parallel kernels")
		t := &report.Table{Header: []string{"kernel", "bound by", "load balance", "memory access"}}
		for _, k := range campaign.AllKernels(scale, k40Dev) {
			c := k.Class()
			t.Add(k.Name(), c.BoundBy, c.LoadBalance, c.MemoryAccess)
		}
		t.Render(w)
	}

	if sel("T2") {
		header(w, "Table II — parallel kernels' details")
		t := &report.Table{Header: []string{"kernel", "domain", "input size", "#threads (K40)", "#threads (Phi)"}}
		for i, k := range campaign.AllKernels(scale, k40Dev) {
			pk := k.Profile(k40Dev)
			pp := campaign.AllKernels(scale, phiDev)[i].Profile(phiDev)
			t.Add(k.Name(), k.Domain(), k.InputLabel(),
				fmt.Sprint(pk.Threads), fmt.Sprint(pp.Threads))
		}
		t.Render(w)
	}

	if sel("F2") {
		header(w, "Figure 2 — DGEMM mean relative error vs incorrect elements")
		for _, dev := range []arch.Device{k40Dev, phiDev} {
			s := scatter("DGEMM", 100, campaign.DGEMMCells(dev, scale),
				func() campaign.ScatterSeries { return campaign.BuildDGEMMScatter(dev, scale, cfg) })
			report.Scatter(w, s, 64, 16)
			fmt.Fprintln(w)
		}
	}

	if sel("F3") {
		header(w, "Figure 3 — DGEMM spatial locality and magnitude (FIT a.u.)")
		for _, dev := range []arch.Device{k40Dev, phiDev} {
			f := locality("DGEMM", campaign.DGEMMCells(dev, scale),
				func() campaign.LocalityFigure { return campaign.BuildDGEMMLocality(dev, scale, cfg, 2) })
			report.LocalityBars(w, f, 60)
			fmt.Fprintln(w)
		}
	}

	if sel("F4") {
		header(w, "Figure 4 — LavaMD mean relative error vs incorrect elements")
		for _, dev := range []arch.Device{k40Dev, phiDev} {
			s := scatter("LavaMD", 20000, campaign.LavaMDCells(dev, scale),
				func() campaign.ScatterSeries { return campaign.BuildLavaMDScatter(dev, scale, cfg) })
			report.Scatter(w, s, 64, 16)
			fmt.Fprintln(w)
		}
	}

	if sel("F5") {
		header(w, "Figure 5 — LavaMD spatial locality and magnitude (FIT a.u.)")
		for _, dev := range []arch.Device{k40Dev, phiDev} {
			f := locality("LavaMD", campaign.LavaMDCells(dev, scale),
				func() campaign.LocalityFigure { return campaign.BuildLavaMDLocality(dev, scale, cfg, 2) })
			report.LocalityBars(w, f, 60)
			fmt.Fprintln(w)
		}
	}

	if sel("F6") {
		header(w, "Figure 6 — HotSpot mean relative error vs incorrect elements")
		for _, dev := range []arch.Device{k40Dev, phiDev} {
			cells := []campaign.Cell{{Dev: dev, Kern: campaign.HotSpotKernel(scale)}}
			s := scatter("HotSpot", 0, cells,
				func() campaign.ScatterSeries { return campaign.BuildHotSpotScatter(dev, scale, cfg) })
			report.Scatter(w, s, 64, 16)
			fmt.Fprintln(w)
		}
	}

	if sel("F7") {
		header(w, "Figure 7 — HotSpot spatial locality and magnitude (FIT a.u.)")
		for _, dev := range []arch.Device{k40Dev, phiDev} {
			cells := []campaign.Cell{{Dev: dev, Kern: campaign.HotSpotKernel(scale)}}
			f := locality("HotSpot", cells,
				func() campaign.LocalityFigure { return campaign.BuildHotSpotLocality(dev, scale, cfg, 2) })
			report.LocalityBars(w, f, 60)
			fmt.Fprintln(w)
		}
	}

	if sel("F8") {
		header(w, "Figure 8 — CLAMR mean relative error vs incorrect elements (Xeon Phi)")
		cells := []campaign.Cell{{Dev: phiDev, Kern: campaign.CLAMRKernel(scale)}}
		s := scatter("CLAMR", 0, cells,
			func() campaign.ScatterSeries { return campaign.BuildCLAMRScatter(phiDev, scale, cfg) })
		report.Scatter(w, s, 64, 16)
	}

	if sel("F9") {
		header(w, "Figure 9 — CLAMR error locality map")
		report.LocalityMap(w, campaign.BuildCLAMRLocalityMap(phiDev, scale, cfg), 64)
	}

	if sel("S1") {
		header(w, "§V preamble — SDC : crash+hang ratios")
		var rows []campaign.RatioRow
		if *stream {
			var err error
			if rows, err = campaign.SDCRatiosStreaming(scale, cfg); err != nil {
				die(err)
			}
		} else {
			rows = campaign.BuildSDCRatios(scale, cfg)
		}
		report.Ratios(w, rows)
	}

	if sel("S2") {
		header(w, "§V-A — DGEMM FIT growth with input size")
		for _, dev := range []arch.Device{k40Dev, phiDev} {
			var rows []campaign.ScalingRow
			if *stream {
				var err error
				if rows, err = campaign.DGEMMScalingStreaming(dev, scale, cfg, 2); err != nil {
					die(err)
				}
			} else {
				rows = campaign.BuildDGEMMScaling(dev, scale, cfg, 2)
			}
			report.Scaling(w, rows)
			fmt.Fprintln(w)
		}
	}

	if sel("S3") {
		header(w, "§V-A — ABFT-correctable share of DGEMM errors")
		for _, dev := range []arch.Device{k40Dev, phiDev} {
			var rows []campaign.ABFTRow
			if *stream {
				var err error
				if rows, err = campaign.ABFTCoverageStreaming(dev, scale, cfg); err != nil {
					die(err)
				}
			} else {
				rows = campaign.BuildABFTCoverage(dev, scale, cfg)
			}
			report.ABFT(w, rows)
			fmt.Fprintln(w)
		}
	}

	if sel("S4") {
		header(w, "§V-D — CLAMR mass-conservation check coverage")
		report.MassCheck(w, campaign.BuildMassCheckCoverage(phiDev, scale, cfg, 2))
	}

	if sel("X1") {
		header(w, "Extension: §IV-D — beam vs software fault injector")
		kern := mustKernel(cli.DefaultSpec("dgemm", scale, k40Dev))
		res := campaign.Run(k40Dev, kern, cfg)
		blind := swinject.Compare(res.ResourceTally)
		sw := swinject.Run(k40Dev, kern, cfg.Strikes, cfg.Seed)
		fmt.Fprintf(w, "K40 DGEMM %s, %d beam strikes vs %d software injections\n",
			kern.InputLabel(), cfg.Strikes, cfg.Strikes)
		fmt.Fprintf(w, "  software-injector AVF estimate: %.2f\n", sw.AVF)
		fmt.Fprintf(w, "  beam SDCs outside the injector's reach: %d/%d (%.0f%%)\n",
			blind.InaccessibleSDCs, blind.BeamSDCs, 100*blind.SDCBlindFraction())
		fmt.Fprintf(w, "  beam crashes+hangs outside its reach:   %d/%d (%.0f%%)\n",
			blind.InaccessibleDUEs, blind.BeamDUEs, 100*blind.DUEBlindFraction())
		fmt.Fprintln(w, "  (the paper's §IV-D argument for beam time: schedulers, dispatchers")
		fmt.Fprintln(w, "   and control logic are inaccessible to software injectors)")
	}

	if err := prof.Stop(); err != nil {
		cli.Fatal("figures", "write profile: %v", err)
	}
}

// prewarm maps artifact IDs to the experiment cells they read and runs the
// union as one campaign matrix. Duplicate cells cost nothing: RunMatrix
// single-flights them on the memo cache.
//
// Keep this mapping in sync with the renderer blocks in main: a missing
// entry is invisible in output (the renderer recomputes its cells through
// the same memo cache) but silently serialises that artifact's compute.
func prewarm(sel func(string) bool, scale campaign.Scale, cfg campaign.Config, k40Dev, phiDev arch.Device) {
	var cells []campaign.Cell
	for _, dev := range []arch.Device{k40Dev, phiDev} {
		if sel("F2") || sel("F3") || sel("S1") || sel("S2") || sel("S3") {
			cells = append(cells, campaign.DGEMMCells(dev, scale)...)
		}
		if sel("F4") || sel("F5") || sel("S1") {
			cells = append(cells, campaign.LavaMDCells(dev, scale)...)
		}
		if sel("F6") || sel("F7") || sel("S1") {
			cells = append(cells, campaign.Cell{Dev: dev, Kern: campaign.HotSpotKernel(scale)})
		}
		if sel("S1") {
			cells = append(cells, campaign.Cell{Dev: dev, Kern: campaign.CLAMRKernel(scale)})
		}
	}
	if sel("F8") {
		cells = append(cells, campaign.Cell{Dev: phiDev, Kern: campaign.CLAMRKernel(scale)})
	}
	if sel("X1") {
		kern := mustKernel(cli.DefaultSpec("dgemm", scale, k40Dev))
		cells = append(cells, campaign.Cell{Dev: k40Dev, Kern: kern})
	}
	if len(cells) > 0 {
		campaign.RunMatrix(cells, cfg)
	}
}

func mustDevice(name string) arch.Device {
	dev, err := registry.NewDevice(name)
	if err != nil {
		cli.Fatal("figures", "%v", err)
	}
	return dev
}

func mustKernel(spec string) kernels.Kernel {
	kern, err := registry.NewKernel(spec)
	if err != nil {
		cli.Fatal("figures", "%v", err)
	}
	return kern
}

func header(w *os.File, title string) {
	fmt.Fprintf(w, "\n================================================================\n%s\n================================================================\n", title)
}
