// Command radload is the multi-tenant load-generation harness: it fires
// thousands of concurrent plan submissions at a live radcritd from N
// synthetic tenants, records throughput, submit-latency percentiles and
// admission-control behavior (429s and their Retry-After headers), then
// samples per-tenant strike progress while the daemon drains to measure
// scheduling fairness. The report lands in BENCH_service.json.
//
// The tenants named in -tenants must already be registered with the
// daemon (its -tenants file); radload only submits as them:
//
//	radload -base http://127.0.0.1:8447 -tenants alpha=3,beta=1 \
//	    -jobs 1000 -strikes 200 -concurrency 32 -out BENCH_service.json
//
// Every submission uses a unique seed, so no two jobs share a cell key
// and the content-addressed store cannot dedup the load away.
//
// Fairness is read mid-drain: while every load tenant still has backlog,
// the ratio of completed strikes between the highest- and lowest-weight
// tenants should match their weight ratio (the acceptance bound is
// ±10%). The final shares always converge to the submitted ratio once
// the queue empties, which is why the mid-drain window is the one that
// matters.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"radcrit/internal/api"
	"radcrit/internal/campaign"
	"radcrit/internal/cli"
	"radcrit/internal/service"
	"radcrit/internal/stats"
)

// tenantSpec is one synthetic tenant's share of the load.
type tenantSpec struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
}

func parseTenants(s string) ([]tenantSpec, error) {
	var out []tenantSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, found := strings.Cut(part, "=")
		weight := 1
		if found {
			v, err := strconv.Atoi(w)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("bad tenant weight %q", part)
			}
			weight = v
		}
		out = append(out, tenantSpec{Name: name, Weight: weight})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants in %q", s)
	}
	return out, nil
}

// tenantTally accumulates one tenant's submission outcomes.
type tenantTally struct {
	Tenant       string `json:"tenant"`
	Weight       int    `json:"weight"`
	Submitted    int    `json:"submitted"`
	Accepted     int    `json:"accepted"`
	Rejected429  int    `json:"rejected_429"`
	RetryAfterOK int    `json:"retry_after_present"`
	StrikesFinal int    `json:"strikes_done_final"`
}

// fairnessSample is one mid-drain reading of per-tenant progress.
type fairnessSample struct {
	ElapsedMS     int64          `json:"elapsed_ms"`
	StrikesDone   map[string]int `json:"strikes_done"`
	QueueDepth    map[string]int `json:"queue_depth"`
	AllBacklogged bool           `json:"all_backlogged"`
	StrikeRatio   float64        `json:"strike_ratio"`   // highest-weight : lowest-weight tenant
	WeightedRatio float64        `json:"weighted_ratio"` // max/min of strikes/weight (1.0 = perfectly fair)
}

// report is BENCH_service.json.
type report struct {
	Description string `json:"description"`
	Config      struct {
		Base        string       `json:"base"`
		Tenants     []tenantSpec `json:"tenants"`
		Jobs        int          `json:"jobs"`
		Strikes     int          `json:"strikes"`
		Device      string       `json:"device"`
		Kernel      string       `json:"kernel"`
		Concurrency int          `json:"concurrency"`
	} `json:"config"`
	Submissions struct {
		Total             int     `json:"total"`
		Accepted          int     `json:"accepted"`
		Rejected429       int     `json:"rejected_429"`
		RetryAfterPresent int     `json:"retry_after_present"`
		DurationSeconds   float64 `json:"duration_seconds"`
		ThroughputRPS     float64 `json:"throughput_rps"`
	} `json:"submissions"`
	SubmitLatencyMS struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"submit_latency_ms"`
	Tenants         []tenantTally    `json:"tenants"`
	FairnessSamples []fairnessSample `json:"fairness_samples"`
	MidDrainSample  *fairnessSample  `json:"mid_drain_sample,omitempty"`
	DrainSeconds    float64          `json:"drain_seconds"`
	StrikesExecuted int              `json:"strikes_executed_total"`
	// Metrics is the daemon's own /metrics view of the same run, scraped
	// at the mid-drain moment and again after the drain. CI cross-asserts
	// it against the client-side numbers above: the strike-share gauge
	// must tell the same fairness story as the sampled /v1/tenants ratio,
	// and the server's 429 count must equal the rejections radload saw.
	Metrics struct {
		ScrapeOK        bool               `json:"scrape_ok"`
		MidDrainStrikes map[string]float64 `json:"mid_drain_strikes_done,omitempty"`
		MidDrainRatio   float64            `json:"mid_drain_strike_ratio"`
		Responses429    float64            `json:"responses_429_total"`
		RateLimited429  float64            `json:"rate_limited_429_total"`
	} `json:"metrics"`
}

func main() {
	base := flag.String("base", "http://127.0.0.1:8447", "radcritd base URL")
	tenantsFlag := flag.String("tenants", "alpha=3,beta=1", "load tenants as name=weight,... (must be registered with the daemon)")
	jobs := flag.Int("jobs", 1000, "total submissions, split round-robin across tenants")
	strikes := flag.Int("strikes", 100, "strikes per submitted plan")
	device := flag.String("device", "k40", "plan cell device")
	kernel := flag.String("kernel", "dgemm:128", "plan cell kernel")
	concurrency := flag.Int("concurrency", 32, "concurrent submitters")
	sample := flag.Duration("sample", 250*time.Millisecond, "fairness sampling interval while draining")
	wait := flag.Bool("wait", true, "wait for the daemon to drain and record fairness samples")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall deadline")
	out := flag.String("out", "BENCH_service.json", "report `file` (- for stdout)")
	var prof cli.ProfileFlags
	prof.Bind(flag.CommandLine)
	showVersion := cli.VersionFlag(flag.CommandLine)
	flag.Parse()
	cli.ExitIfVersion(*showVersion)

	if err := prof.Start(); err != nil {
		cli.Fatal("radload", "%v", err)
	}

	specs, err := parseTenants(*tenantsFlag)
	if err != nil {
		cli.Fatal("radload", "%v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var rep report
	rep.Description = "radcritd multi-tenant service benchmark: concurrent plan submissions from synthetic tenants; throughput, submit latency, 429 admission behavior and mid-drain weighted-fair strike shares. Regenerate with cmd/radload against a live daemon."
	rep.Config.Base = *base
	rep.Config.Tenants = specs
	rep.Config.Jobs = *jobs
	rep.Config.Strikes = *strikes
	rep.Config.Device = *device
	rep.Config.Kernel = *kernel
	rep.Config.Concurrency = *concurrency

	tallies := make([]*tenantTally, len(specs))
	for i, s := range specs {
		tallies[i] = &tenantTally{Tenant: s.Name, Weight: s.Weight}
	}

	// The sampler runs from the first submission: fairness is only
	// observable while every tenant still has backlog, and the high-weight
	// tenant's queue may already be empty by the time the last submission
	// lands.
	var (
		mu        sync.Mutex
		latencies []float64
	)
	httpc := &http.Client{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	start := time.Now()

	client := api.NewClient(*base)
	submitted := make(chan struct{}) // closed when every submission landed
	drained := make(chan struct{})   // closed when the daemon's queue is empty
	var samplerWG sync.WaitGroup
	if *wait {
		samplerWG.Add(1)
		go func() {
			defer samplerWG.Done()
			defer close(drained)
			for {
				ts, err := client.Tenants(ctx)
				if err != nil {
					cli.Fatal("radload", "sample tenants: %v", err)
				}
				s := sampleFrom(specs, ts, time.Since(start))
				// While both tenants are backlogged, also read the daemon's
				// own strike-share gauge: CI checks it tells the same
				// fairness story as this client-side sample.
				var scraped map[string]float64
				if s.AllBacklogged {
					scraped, _ = scrapeMetrics(ctx, httpc, *base)
				}
				mu.Lock()
				rep.FairnessSamples = append(rep.FairnessSamples, s)
				if s.AllBacklogged {
					last := s
					rep.MidDrainSample = &last
					if scraped != nil {
						midDrainMetrics(&rep, specs, scraped)
					}
				}
				mu.Unlock()
				select {
				case <-submitted:
					// All submissions accepted: from here, an empty queue
					// means the run is over (before that it may just mean
					// the load has not arrived yet).
					list, err := client.List(ctx)
					if err != nil {
						cli.Fatal("radload", "list jobs: %v", err)
					}
					if list.States[service.StateQueued]+list.States[service.StateRunning] == 0 {
						return
					}
				default:
				}
				select {
				case <-ctx.Done():
					cli.Fatal("radload", "deadline while draining: %v", ctx.Err())
				case <-time.After(*sample):
				}
			}
		}()
	}
	// Each tenant gets its own submitter pool and work feed: one tenant
	// sleeping through 429 retries must not throttle another tenant's
	// submission rate (shared workers would leave the high-weight tenant's
	// queue starved and the fairness window unmeasurable).
	perTenant := *concurrency / len(specs)
	if perTenant < 1 {
		perTenant = 1
	}
	feeds := make([]chan int, len(specs))
	for i := range feeds {
		feeds[i] = make(chan int)
	}
	for ti := range specs {
		for w := 0; w < perTenant; w++ {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				for idx := range feeds[ti] {
					spec := specs[ti]
					tally := tallies[ti]
					// Unique seed per submission: unique cell key, no dedup.
					plan := campaign.NewPlan(uint64(1_000_000+idx), *strikes).
						WithCell(*device, *kernel).WithWorkers(1)
					body, err := json.Marshal(plan)
					if err != nil {
						cli.Fatal("radload", "marshal plan: %v", err)
					}
					mu.Lock()
					tally.Submitted++
					mu.Unlock()
					for attempt := 0; ; attempt++ {
						t0 := time.Now()
						status, retryAfter, err := submit(ctx, httpc, *base, spec.Name, body)
						lat := time.Since(t0)
						if err != nil {
							if ctx.Err() != nil {
								return
							}
							cli.Fatal("radload", "submit: %v", err)
						}
						if status == http.StatusTooManyRequests {
							mu.Lock()
							tally.Rejected429++
							if retryAfter > 0 {
								tally.RetryAfterOK++
							}
							mu.Unlock()
							// Closed-loop retry: honor the server's estimate,
							// bounded so one slow tenant cannot stall the run.
							delay := retryAfter
							if delay <= 0 || delay > 2*time.Second {
								delay = 2 * time.Second
							}
							select {
							case <-ctx.Done():
								return
							case <-time.After(delay):
							}
							continue
						}
						if status != http.StatusCreated {
							cli.Fatal("radload", "submit as %s: HTTP %d", spec.Name, status)
						}
						mu.Lock()
						tally.Accepted++
						latencies = append(latencies, float64(lat.Microseconds())/1000)
						mu.Unlock()
						break
					}
				}
			}(ti)
		}
	}
	// Feed each tenant independently too, for the same decoupling reason.
	var feedWG sync.WaitGroup
	for ti := range specs {
		feedWG.Add(1)
		go func(ti int) {
			defer feedWG.Done()
			defer close(feeds[ti])
			for i := ti; i < *jobs; i += len(specs) {
				select {
				case feeds[ti] <- i:
				case <-ctx.Done():
					return
				}
			}
		}(ti)
	}
	feedWG.Wait()
	wg.Wait()
	if ctx.Err() != nil {
		cli.Fatal("radload", "deadline while submitting: %v", ctx.Err())
	}
	submitDur := time.Since(start)

	for _, t := range tallies {
		rep.Submissions.Total += t.Submitted
		rep.Submissions.Accepted += t.Accepted
		rep.Submissions.Rejected429 += t.Rejected429
		rep.Submissions.RetryAfterPresent += t.RetryAfterOK
	}
	rep.Submissions.DurationSeconds = submitDur.Seconds()
	if submitDur > 0 {
		rep.Submissions.ThroughputRPS = float64(rep.Submissions.Accepted) / submitDur.Seconds()
	}
	sort.Float64s(latencies)
	rep.SubmitLatencyMS.P50 = stats.Percentile(latencies, 0.50)
	rep.SubmitLatencyMS.P90 = stats.Percentile(latencies, 0.90)
	rep.SubmitLatencyMS.P99 = stats.Percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.SubmitLatencyMS.Max = latencies[n-1]
	}

	// Wait out the drain, then read the final per-tenant tallies.
	if *wait {
		drainStart := time.Now()
		close(submitted)
		samplerWG.Wait()
		<-drained
		rep.DrainSeconds = time.Since(drainStart).Seconds()
		final, err := client.Tenants(ctx)
		if err != nil {
			cli.Fatal("radload", "final tenants: %v", err)
		}
		byName := map[string]service.TenantStat{}
		for _, t := range final {
			byName[t.Tenant] = t
		}
		for _, t := range tallies {
			t.StrikesFinal = byName[t.Tenant].StrikesDone
			rep.StrikesExecuted += t.StrikesFinal
		}
		// Post-drain scrape: the server's 429 count must equal the
		// rejections every submitter observed (both admission-quota and
		// rate-limiter rejections land on the responses counter).
		if scraped, err := scrapeMetrics(ctx, httpc, *base); err == nil {
			rep.Metrics.ScrapeOK = true
			for k, v := range scraped {
				switch {
				case strings.HasPrefix(k, "radcrit_api_responses_total{") && strings.Contains(k, `code="429"`):
					rep.Metrics.Responses429 += v
				case strings.HasPrefix(k, "radcrit_api_rate_limited_total{"):
					rep.Metrics.RateLimited429 += v
				}
			}
		}
	}
	for _, t := range tallies {
		rep.Tenants = append(rep.Tenants, *t)
	}
	// Thin the sample trail for the report: the full-rate trail exists to
	// catch the mid-drain window, not to bloat BENCH_service.json.
	if n := len(rep.FairnessSamples); n > 64 {
		step := (n + 63) / 64
		thin := rep.FairnessSamples[:0]
		for i := 0; i < n; i += step {
			thin = append(thin, rep.FairnessSamples[i])
		}
		if last := rep.FairnessSamples[n-1]; thin[len(thin)-1].ElapsedMS != last.ElapsedMS {
			thin = append(thin, last)
		}
		rep.FairnessSamples = thin
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		cli.Fatal("radload", "%v", err)
	}
	if *out == "-" {
		os.Stdout.Write(buf.Bytes())
	} else if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		cli.Fatal("radload", "%v", err)
	}
	fmt.Fprintf(os.Stderr, "radload: %d submissions (%d rejected-then-retried) in %.2fs, drain %.2fs, report: %s\n",
		rep.Submissions.Total, rep.Submissions.Rejected429, rep.Submissions.DurationSeconds, rep.DrainSeconds, *out)
	if err := prof.Stop(); err != nil {
		cli.Fatal("radload", "%v", err)
	}
}

// scrapeMetrics reads the daemon's Prometheus exposition into a flat
// map of "family{labels}" → value (HELP/TYPE lines skipped).
func scrapeMetrics(ctx context.Context, c *http.Client, base string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			out[line[:i]] = v
		}
	}
	return out, sc.Err()
}

// midDrainMetrics records the server-side strike-share gauge at the
// mid-drain instant and its high:low-weight ratio. Called under mu.
func midDrainMetrics(rep *report, specs []tenantSpec, scraped map[string]float64) {
	rep.Metrics.MidDrainStrikes = map[string]float64{}
	var hiW, loW tenantSpec
	for _, spec := range specs {
		key := fmt.Sprintf("radcrit_tenant_strikes_done{tenant=%q}", spec.Name)
		rep.Metrics.MidDrainStrikes[spec.Name] = scraped[key]
		if hiW.Name == "" || spec.Weight > hiW.Weight {
			hiW = spec
		}
		if loW.Name == "" || spec.Weight < loW.Weight {
			loW = spec
		}
	}
	if lo := rep.Metrics.MidDrainStrikes[loW.Name]; lo > 0 {
		rep.Metrics.MidDrainRatio = rep.Metrics.MidDrainStrikes[hiW.Name] / lo
	}
}

// submit POSTs one plan as a tenant and reports (status, Retry-After).
func submit(ctx context.Context, c *http.Client, base, tenantName string, body []byte) (int, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenantName != "" {
		req.Header.Set(api.TenantHeader, tenantName)
	}
	resp, err := c.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var retryAfter time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	// Drain the body so the connection is reused.
	var sink [512]byte
	for {
		if _, err := resp.Body.Read(sink[:]); err != nil {
			break
		}
	}
	return resp.StatusCode, retryAfter, nil
}

// sampleFrom reduces one /v1/tenants reading to the fairness view over
// the load tenants.
func sampleFrom(specs []tenantSpec, ts []service.TenantStat, elapsed time.Duration) fairnessSample {
	byName := map[string]service.TenantStat{}
	for _, t := range ts {
		byName[t.Tenant] = t
	}
	s := fairnessSample{
		ElapsedMS:     elapsed.Milliseconds(),
		StrikesDone:   map[string]int{},
		QueueDepth:    map[string]int{},
		AllBacklogged: true,
	}
	var hiW, loW tenantSpec
	for _, spec := range specs {
		st := byName[spec.Name]
		s.StrikesDone[spec.Name] = st.StrikesDone
		s.QueueDepth[spec.Name] = st.QueueDepth
		if st.QueueDepth == 0 {
			s.AllBacklogged = false
		}
		if hiW.Name == "" || spec.Weight > hiW.Weight {
			hiW = spec
		}
		if loW.Name == "" || spec.Weight < loW.Weight {
			loW = spec
		}
	}
	if lo := s.StrikesDone[loW.Name]; lo > 0 {
		s.StrikeRatio = float64(s.StrikesDone[hiW.Name]) / float64(lo)
	}
	var maxN, minN float64 = -1, -1
	for _, spec := range specs {
		n := float64(s.StrikesDone[spec.Name]) / float64(spec.Weight)
		if maxN < 0 || n > maxN {
			maxN = n
		}
		if minN < 0 || n < minN {
			minN = n
		}
	}
	if minN > 0 {
		s.WeightedRatio = maxN / minN
	}
	return s
}
