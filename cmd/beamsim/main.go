// Command beamsim runs simulated neutron-beam campaign cells — a device,
// a kernel, an input size, a strike budget — and writes the CAROL-style
// log plus a summary, mirroring what a real LANSCE/ISIS slot produces.
//
// Cells come either from the shared registry flags or from a declarative
// plan file:
//
//	beamsim -device k40 -kernel dgemm:256 -strikes 300 [-seed S] [-o campaign.log]
//	beamsim -plan plan.json
//	beamsim -plan plan.json -adaptive-target 0.05
//
// A single-cell run writes its campaign log to stdout (or -o); multi-cell
// plans print one summary per cell.
//
// -adaptive-target (or an "adaptive" block in the plan file) switches to
// the early-stopping engine: each cell stops as soon as the anytime-valid
// confidence interval for its SDC proportion is tighter than the target
// half-width, freed strikes are re-dealt to the widest-interval cells,
// and the summary reports consumed vs planned strikes. Runs stay
// deterministic: the same plan always stops at the same strike counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"radcrit"
	"radcrit/internal/cli"
)

func main() {
	shared := cli.CampaignFlags{Device: "k40", Kernel: "dgemm", Strikes: 300, Seed: 1, Scale: "test"}
	shared.Bind(flag.CommandLine, true)
	var adaptive cli.AdaptiveFlags
	adaptive.Bind(flag.CommandLine)
	var prof cli.ProfileFlags
	prof.Bind(flag.CommandLine)
	var submit cli.SubmitFlags
	submit.Bind(flag.CommandLine)
	out := flag.String("o", "", "log output path for single-cell runs (default stdout)")
	showVersion := cli.VersionFlag(flag.CommandLine)
	flag.Parse()
	cli.ExitIfVersion(*showVersion)

	plan, err := shared.ResolvePlan()
	if err != nil {
		cli.Fatal("beamsim", "%v", err)
	}
	if err := adaptive.Apply(plan); err != nil {
		cli.Fatal("beamsim", "%v", err)
	}
	if submit.Active() {
		// Client mode: the campaign runs on a radcritd daemon (sharing
		// its result store with every other client) and only the
		// summaries come back — there is no local log to write.
		if *out != "" {
			cli.Fatal("beamsim", "-o is not available with -submit (the daemon keeps no per-strike log)")
		}
		res, err := submit.Run(context.Background(), plan)
		if err != nil {
			cli.Fatal("beamsim", "%v", err)
		}
		cli.PrintJobSummaries(os.Stderr, res)
		return
	}
	if err := prof.Start(); err != nil {
		cli.Fatal("beamsim", "start profiling: %v", err)
	}
	if *out != "" && len(plan.Cells) != 1 {
		cli.Fatal("beamsim", "-o needs a single-cell plan (got %d cells)", len(plan.Cells))
	}

	if plan.Adaptive != nil {
		runAdaptive(plan, *out)
	} else {
		runBatch(plan, *out)
	}
	if err := prof.Stop(); err != nil {
		cli.Fatal("beamsim", "write profile: %v", err)
	}
}

// runBatch is the classic fixed-budget path: the memoised batch engine,
// full retained results, and the public log rebuilt from the result.
func runBatch(plan *radcrit.Plan, out string) {
	res, err := radcrit.NewBatchRunner().Run(context.Background(), plan)
	if err != nil {
		cli.Fatal("beamsim", "%v", err)
	}
	for _, cell := range res.Cells {
		summarize(cell)
	}
	if len(res.Cells) == 1 {
		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				cli.Fatal("beamsim", "create log: %v", err)
			}
			defer f.Close()
			w = f
		}
		if err := radcrit.WriteLog(w, res.Cells[0].Result, plan.Seed); err != nil {
			cli.Fatal("beamsim", "write log: %v", err)
		}
	}
}

// runAdaptive executes a plan carrying an early-stopping spec through
// the adaptive engine. The checkpoint log (with its #CHK and #EPOCH
// records) is streamed during the run, so single-cell runs still honour
// -o / stdout; summaries report consumed vs planned strikes.
func runAdaptive(plan *radcrit.Plan, out string) {
	r := radcrit.NewAdaptiveRunner()
	if len(plan.Cells) == 1 {
		r.Logs = func(int, radcrit.CellSpec) (io.WriteCloser, error) {
			if out == "" {
				return nopCloser{os.Stdout}, nil
			}
			return os.Create(out)
		}
	}
	res, err := r.Run(context.Background(), plan)
	if err != nil {
		cli.Fatal("beamsim", "%v", err)
	}
	for _, cell := range res.Cells {
		summarizeStream(cell, plan.Strikes)
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

// summarizeStream renders an adaptive cell from its streaming info and
// summary (there is no retained batch Result on this path). Consumed
// strikes are reported against the plan's per-cell budget: fewer means
// the confidence target stopped the cell early, more means reallocation
// granted it strikes other cells freed.
func summarizeStream(cell *radcrit.CellOutcome, planned int) {
	if cell.Err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %s %s: %v\n", cell.Spec.Device, cell.Spec.Kernel, cell.Err)
		return
	}
	info, sum := cell.Info, cell.Summary
	fmt.Fprintf(os.Stderr, "campaign: %s %s %s\n", info.Device, info.Kernel, info.Input)
	fmt.Fprintf(os.Stderr, "  strikes:   %d consumed of %d planned over %.1f simulated beam hours\n",
		info.Strikes, planned, info.Exposure.BeamHours)
	if saved := planned - info.Strikes; saved > 0 {
		fmt.Fprintf(os.Stderr, "  early stop: confidence target reached, %d strikes freed\n", saved)
	}
	fmt.Fprintf(os.Stderr, "  outcomes:  %d masked, %d SDC, %d crash, %d hang\n",
		sum.Tally.Masked, sum.Tally.SDC, sum.Tally.Crash, sum.Tally.Hang)
	fmt.Fprintf(os.Stderr, "  SDC:DUE:   %.2f\n", sum.Tally.SDCToDUERatio())
	for k, th := range sum.Thresholds {
		fmt.Fprintf(os.Stderr, "  SDC FIT (>%g%%): %.3g a.u.\n", th, sum.SDCFIT[k])
	}
	fmt.Fprintf(os.Stderr, "  natural-equivalent exposure: %.3g hours\n",
		info.Exposure.Facility.EquivalentNaturalHours(info.Exposure.BeamHours))
}

func summarize(cell *radcrit.CellOutcome) {
	res := cell.Result
	fmt.Fprintf(os.Stderr, "campaign: %s %s %s\n", res.Device, res.Kernel, res.Input)
	fmt.Fprintf(os.Stderr, "  strikes:   %d over %.1f simulated beam hours\n",
		res.Strikes, res.Exposure.BeamHours)
	fmt.Fprintf(os.Stderr, "  outcomes:  %d masked, %d SDC, %d crash, %d hang\n",
		res.Tally.Masked, res.Tally.SDC, res.Tally.Crash, res.Tally.Hang)
	fmt.Fprintf(os.Stderr, "  SDC:DUE:   %.2f\n", res.Tally.SDCToDUERatio())
	fmt.Fprintf(os.Stderr, "  SDC FIT:   %.3g a.u. (all), %.3g a.u. (>2%%)\n",
		res.SDCFIT(0), res.SDCFIT(2))
	fmt.Fprintf(os.Stderr, "  natural-equivalent exposure: %.3g hours\n",
		res.Exposure.Facility.EquivalentNaturalHours(res.Exposure.BeamHours))
}
