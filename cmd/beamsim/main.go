// Command beamsim runs one simulated neutron-beam campaign cell — a
// device, a kernel, an input size, a strike budget — and writes the
// CAROL-style log plus a summary, mirroring what a real LANSCE/ISIS slot
// produces.
//
// Usage:
//
//	beamsim -device k40|phi -kernel dgemm|lavamd|hotspot|clamr
//	        [-size N] [-strikes N] [-seed S] [-scale test|paper]
//	        [-o campaign.log]
package main

import (
	"flag"
	"fmt"
	"os"

	"radcrit"
	"radcrit/internal/campaign"
)

func main() {
	deviceFlag := flag.String("device", "k40", "device: k40 or phi")
	kernelFlag := flag.String("kernel", "dgemm", "kernel: dgemm, lavamd, hotspot, clamr")
	size := flag.Int("size", 0, "input size (matrix side / box grid); 0 = scale default")
	strikes := flag.Int("strikes", 300, "particle strikes to simulate")
	seed := flag.Uint64("seed", 1, "campaign seed")
	scaleFlag := flag.String("scale", "test", "experiment scale: test or paper")
	out := flag.String("o", "", "log output path (default stdout)")
	flag.Parse()

	scale := campaign.TestScale
	if *scaleFlag == "paper" {
		scale = campaign.PaperScale
	}

	var dev radcrit.Device
	switch *deviceFlag {
	case "k40":
		dev = radcrit.K40()
	case "phi":
		dev = radcrit.XeonPhi()
	default:
		fatal("unknown device %q", *deviceFlag)
	}

	var kern radcrit.Kernel
	switch *kernelFlag {
	case "dgemm":
		n := *size
		if n == 0 {
			sizes := campaign.DGEMMSizes(scale, dev)
			n = sizes[0]
		}
		kern = radcrit.NewDGEMM(n)
	case "lavamd":
		g := *size
		if g == 0 {
			sizes := campaign.LavaMDSizes(scale, dev)
			g = sizes[0]
		}
		kern = radcrit.NewLavaMD(g)
	case "hotspot":
		kern = campaign.HotSpotKernel(scale)
	case "clamr":
		kern = campaign.CLAMRKernel(scale)
	default:
		fatal("unknown kernel %q", *kernelFlag)
	}

	res := radcrit.RunCampaign(dev, kern, radcrit.CampaignConfig(*seed, *strikes))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("create log: %v", err)
		}
		defer f.Close()
		w = f
	}
	if err := radcrit.WriteLog(w, res, *seed); err != nil {
		fatal("write log: %v", err)
	}

	fmt.Fprintf(os.Stderr, "campaign: %s %s %s\n", res.Device, res.Kernel, res.Input)
	fmt.Fprintf(os.Stderr, "  strikes:   %d over %.1f simulated beam hours\n",
		res.Strikes, res.Exposure.BeamHours)
	fmt.Fprintf(os.Stderr, "  outcomes:  %d masked, %d SDC, %d crash, %d hang\n",
		res.Tally.Masked, res.Tally.SDC, res.Tally.Crash, res.Tally.Hang)
	fmt.Fprintf(os.Stderr, "  SDC:DUE:   %.2f\n", res.Tally.SDCToDUERatio())
	fmt.Fprintf(os.Stderr, "  SDC FIT:   %.3g a.u. (all), %.3g a.u. (>2%%)\n",
		res.SDCFIT(0), res.SDCFIT(2))
	fmt.Fprintf(os.Stderr, "  natural-equivalent exposure: %.3g hours\n",
		res.Exposure.Facility.EquivalentNaturalHours(res.Exposure.BeamHours))
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "beamsim: "+format+"\n", args...)
	os.Exit(1)
}
