// Command beamsim runs simulated neutron-beam campaign cells — a device,
// a kernel, an input size, a strike budget — and writes the CAROL-style
// log plus a summary, mirroring what a real LANSCE/ISIS slot produces.
//
// Cells come either from the shared registry flags or from a declarative
// plan file:
//
//	beamsim -device k40 -kernel dgemm:256 -strikes 300 [-seed S] [-o campaign.log]
//	beamsim -plan plan.json
//
// A single-cell run writes its campaign log to stdout (or -o); multi-cell
// plans print one summary per cell.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"radcrit"
	"radcrit/internal/cli"
)

func main() {
	shared := cli.CampaignFlags{Device: "k40", Kernel: "dgemm", Strikes: 300, Seed: 1, Scale: "test"}
	shared.Bind(flag.CommandLine, true)
	var prof cli.ProfileFlags
	prof.Bind(flag.CommandLine)
	var submit cli.SubmitFlags
	submit.Bind(flag.CommandLine)
	out := flag.String("o", "", "log output path for single-cell runs (default stdout)")
	showVersion := cli.VersionFlag(flag.CommandLine)
	flag.Parse()
	cli.ExitIfVersion(*showVersion)

	plan, err := shared.ResolvePlan()
	if err != nil {
		cli.Fatal("beamsim", "%v", err)
	}
	if submit.Active() {
		// Client mode: the campaign runs on a radcritd daemon (sharing
		// its result store with every other client) and only the
		// summaries come back — there is no local log to write.
		if *out != "" {
			cli.Fatal("beamsim", "-o is not available with -submit (the daemon keeps no per-strike log)")
		}
		res, err := submit.Run(context.Background(), plan)
		if err != nil {
			cli.Fatal("beamsim", "%v", err)
		}
		cli.PrintJobSummaries(os.Stderr, res)
		return
	}
	if err := prof.Start(); err != nil {
		cli.Fatal("beamsim", "start profiling: %v", err)
	}
	if *out != "" && len(plan.Cells) != 1 {
		cli.Fatal("beamsim", "-o needs a single-cell plan (got %d cells)", len(plan.Cells))
	}

	res, err := radcrit.NewBatchRunner().Run(context.Background(), plan)
	if err != nil {
		cli.Fatal("beamsim", "%v", err)
	}

	for _, cell := range res.Cells {
		summarize(cell)
	}
	if len(res.Cells) == 1 {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				cli.Fatal("beamsim", "create log: %v", err)
			}
			defer f.Close()
			w = f
		}
		if err := radcrit.WriteLog(w, res.Cells[0].Result, plan.Seed); err != nil {
			cli.Fatal("beamsim", "write log: %v", err)
		}
	}
	if err := prof.Stop(); err != nil {
		cli.Fatal("beamsim", "write profile: %v", err)
	}
}

func summarize(cell *radcrit.CellOutcome) {
	res := cell.Result
	fmt.Fprintf(os.Stderr, "campaign: %s %s %s\n", res.Device, res.Kernel, res.Input)
	fmt.Fprintf(os.Stderr, "  strikes:   %d over %.1f simulated beam hours\n",
		res.Strikes, res.Exposure.BeamHours)
	fmt.Fprintf(os.Stderr, "  outcomes:  %d masked, %d SDC, %d crash, %d hang\n",
		res.Tally.Masked, res.Tally.SDC, res.Tally.Crash, res.Tally.Hang)
	fmt.Fprintf(os.Stderr, "  SDC:DUE:   %.2f\n", res.Tally.SDCToDUERatio())
	fmt.Fprintf(os.Stderr, "  SDC FIT:   %.3g a.u. (all), %.3g a.u. (>2%%)\n",
		res.SDCFIT(0), res.SDCFIT(2))
	fmt.Fprintf(os.Stderr, "  natural-equivalent exposure: %.3g hours\n",
		res.Exposure.Facility.EquivalentNaturalHours(res.Exposure.BeamHours))
}
