// Command calibrate prints the analytic (expectation-level) campaign
// statistics of the device models at paper-scale workloads: per-strike
// outcome rates, SDC:DUE ratios and SDC-FIT growth with input size. It is
// the tuning loop for the calibration constants documented in DESIGN.md.
//
// Usage:
//
//	calibrate [-devices k40,phi]
package main

import (
	"flag"
	"fmt"
	"strings"

	"radcrit/internal/arch"
	"radcrit/internal/cli"
	"radcrit/internal/kernels/clamr"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/kernels/hotspot"
	"radcrit/internal/kernels/lavamd"
	"radcrit/internal/registry"
)

func main() {
	names := flag.String("devices", strings.Join(registry.DeviceNames(), ","),
		"comma-separated registered device names to calibrate")
	showVersion := cli.VersionFlag(flag.CommandLine)
	flag.Parse()
	cli.ExitIfVersion(*showVersion)

	var devs []arch.Device
	for _, name := range strings.Split(*names, ",") {
		dev, err := registry.NewDevice(strings.TrimSpace(name))
		if err != nil {
			cli.Fatal("calibrate", "%v", err)
		}
		devs = append(devs, dev)
	}
	for _, dev := range devs {
		fmt.Println("=== ", dev.ShortName())
		var base float64
		sizes := []int{1024, 2048, 4096}
		if dev.Model().VectorWidthBits > 0 {
			sizes = append(sizes, 8192)
		}
		for i, n := range sizes {
			p := dgemm.New(n).Profile(dev)
			_, sdc, crash, hang := dev.Model().ExpectedRates(p)
			area := dev.SensitiveArea(p)
			fitSDC := sdc * area
			if i == 0 {
				base = fitSDC
			}
			fmt.Printf("DGEMM %5d: area=%8.0f sdcFIT=%8.1f growth=%.2fx ratio=%.2f\n",
				n, area, fitSDC, fitSDC/base, sdc/(crash+hang))
		}
		lsizes := []int{13, 15, 19, 23}
		var lbase float64
		for i, g := range lsizes {
			// Profile only: avoid building real particle state.
			p := lavamd.New(g).Profile(dev)
			_, sdc, crash, hang := dev.Model().ExpectedRates(p)
			area := dev.SensitiveArea(p)
			fitSDC := sdc * area
			if i == 0 {
				lbase = fitSDC
			}
			fmt.Printf("LavaMD %4d: area=%8.0f sdcFIT=%8.1f growth=%.2fx ratio=%.2f\n",
				g, area, fitSDC, fitSDC/lbase, sdc/(crash+hang))
		}
		// HotSpot / CLAMR profiles without golden computation:
		hp := hotspotProfile(dev)
		_, sdc, crash, hang := dev.Model().ExpectedRates(hp)
		fmt.Printf("HotSpot    : area=%8.0f sdcFIT=%8.1f ratio=%.2f\n",
			dev.SensitiveArea(hp), sdc*dev.SensitiveArea(hp), sdc/(crash+hang))
		cp := clamrProfile(dev)
		_, sdc, crash, hang = dev.Model().ExpectedRates(cp)
		fmt.Printf("CLAMR      : area=%8.0f sdcFIT=%8.1f ratio=%.2f\n",
			dev.SensitiveArea(cp), sdc*dev.SensitiveArea(cp), sdc/(crash+hang))
	}
}

// hotspotProfile mirrors hotspot.Kernel.Profile at paper scale without the
// golden simulation.
func hotspotProfile(dev arch.Device) arch.Profile {
	k := hotspot.New(64, 4) // throwaway instance for the method
	p := k.Profile(dev)
	cells := 1024 * 1024
	p.InputLabel = "1024x1024"
	p.Threads = cells
	p.Blocks = (1024 / hotspot.TileSide) * (1024 / hotspot.TileSide)
	p.CacheFootprintKB = 2 * float64(cells) * 4 / 1024
	p.RelRuntime = 1
	return p
}

func clamrProfile(dev arch.Device) arch.Profile {
	k := clamr.New(32, 10) // throwaway
	p := k.Profile(dev)
	cells := 512 * 512
	p.InputLabel = "512x512"
	p.Threads = int(float64(cells) * 1.3)
	p.Blocks = (512 / clamr.TileSide) * (512 / clamr.TileSide)
	p.CacheFootprintKB = 3 * float64(cells) * 8 / 1024
	p.RelRuntime = 1
	return p
}
