// Benchmarks of the per-strike hot path: the cost of one classified
// strike through a prepared injector.Session, per kernel family. Two
// populations are measured:
//
//   - BenchmarkStrike<Kernel> draws the full strike population (masked,
//     SDC, crash, hang in campaign proportions) — the number a campaign's
//     strikes/second follows. Its allocs/op is guarded by cmd/benchguard
//     in CI against the baselines recorded in BENCH_campaign.json.
//   - BenchmarkInjected<Kernel> replays only strikes whose syndrome is an
//     SDC, so every iteration pays a full injected kernel execution — the
//     worst-case per-strike cost and the target of the pooled scratch
//     arenas (ISSUE 4: >=2x on the iterative kernels).
//
// Run with: go test -bench='Strike|Injected' -benchmem -run='^$' .
package radcrit

import (
	"testing"

	"radcrit/internal/arch"
	"radcrit/internal/beam"
	"radcrit/internal/fault"
	"radcrit/internal/injector"
	"radcrit/internal/k40"
	"radcrit/internal/kernels"
	"radcrit/internal/kernels/clamr"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/kernels/hotspot"
	"radcrit/internal/kernels/lavamd"
	"radcrit/internal/phi"
	"radcrit/internal/xrand"
)

// strikeCycle is the number of distinct per-index RNG splits the mixed
// benchmarks cycle through: large enough to visit a representative strike
// population, small enough that golden-state caches stay warm.
const strikeCycle = 4096

// strikeAt reproduces the campaign engine's per-index strike derivation.
func strikeAt(rng *xrand.RNG, i uint64) (fault.Strike, *xrand.RNG) {
	sub := rng.Split(i + 1)
	return fault.Strike{When: sub.Float64(), Energy: beam.StrikeEnergy(sub)}, sub
}

// benchStrikeMix measures the full strike population through a session.
func benchStrikeMix(b *testing.B, dev arch.Device, kern kernels.Kernel) {
	ses, err := injector.NewSession(dev, kern)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(42)
	// Warm the golden-state handle and the session pools.
	for i := uint64(0); i < 64; i++ {
		strike, sub := strikeAt(rng, i)
		releaseOutcome(ses, ses.RunOne(strike, sub))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strike, sub := strikeAt(rng, uint64(i%strikeCycle))
		releaseOutcome(ses, ses.RunOne(strike, sub))
	}
}

// benchInjected measures SDC-syndrome strikes only: each iteration runs
// the real injected kernel and builds a mismatch report.
func benchInjected(b *testing.B, dev arch.Device, kern kernels.Kernel) {
	ses, err := injector.NewSession(dev, kern)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(42)
	prof := ses.Profile()
	// Collect strike indices whose syndrome resolves to an SDC, probing
	// with a throwaway RNG clone exactly as Session.RunOne would.
	var idxs []uint64
	for i := uint64(0); i < 65536 && len(idxs) < 256; i++ {
		strike, sub := strikeAt(rng, i)
		if syn := dev.ResolveStrike(prof, strike, sub); syn.Outcome == fault.SDC {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		b.Fatal("no SDC syndromes in probe window")
	}
	// Warm pools and golden caches over the corpus once.
	for _, i := range idxs {
		strike, sub := strikeAt(rng, i)
		releaseOutcome(ses, ses.RunOne(strike, sub))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strike, sub := strikeAt(rng, idxs[i%len(idxs)])
		releaseOutcome(ses, ses.RunOne(strike, sub))
	}
}

// benchInjectedBatch measures the same SDC corpus through the session's
// cross-strike batch path (Session.RunBatch -> kernels.BatchRunner) in
// spans of batchSpan strikes, the shape the streaming engine's chunk
// loop produces. ns/op stays per strike, directly comparable with
// BenchmarkInjected<Kernel>.
func benchInjectedBatch(b *testing.B, dev arch.Device, kern kernels.Kernel) {
	const batchSpan = 64
	ses, err := injector.NewSession(dev, kern)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(42)
	prof := ses.Profile()
	var idxs []uint64
	for i := uint64(0); i < 65536 && len(idxs) < 256; i++ {
		strike, sub := strikeAt(rng, i)
		if syn := dev.ResolveStrike(prof, strike, sub); syn.Outcome == fault.SDC {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		b.Fatal("no SDC syndromes in probe window")
	}
	strikes := make([]fault.Strike, batchSpan)
	rngs := make([]*xrand.RNG, batchSpan)
	outs := make([]injector.Outcome, batchSpan)
	runSpan := func(base, n int) {
		for j := 0; j < n; j++ {
			strikes[j], rngs[j] = strikeAt(rng, idxs[(base+j)%len(idxs)])
		}
		ses.RunBatch(strikes[:n], rngs[:n], outs[:n])
		for j := 0; j < n; j++ {
			releaseOutcome(ses, outs[j])
			outs[j] = injector.Outcome{}
		}
	}
	runSpan(0, batchSpan) // warm pools and golden tables
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSpan {
		runSpan(i, min(batchSpan, b.N-i))
	}
}

func BenchmarkStrikeDGEMM(b *testing.B)   { benchStrikeMix(b, k40.New(), dgemm.New(256)) }
func BenchmarkStrikeLavaMD(b *testing.B)  { benchStrikeMix(b, k40.New(), lavamd.New(5)) }
func BenchmarkStrikeHotSpot(b *testing.B) { benchStrikeMix(b, k40.New(), hotspot.New(64, 80)) }
func BenchmarkStrikeCLAMR(b *testing.B)   { benchStrikeMix(b, phi.New(), clamr.New(48, 60)) }

func BenchmarkInjectedDGEMM(b *testing.B)   { benchInjected(b, k40.New(), dgemm.New(256)) }
func BenchmarkInjectedLavaMD(b *testing.B)  { benchInjected(b, k40.New(), lavamd.New(5)) }
func BenchmarkInjectedHotSpot(b *testing.B) { benchInjected(b, k40.New(), hotspot.New(64, 80)) }
func BenchmarkInjectedCLAMR(b *testing.B)   { benchInjected(b, phi.New(), clamr.New(48, 60)) }

func BenchmarkInjectedBatchDGEMM(b *testing.B)  { benchInjectedBatch(b, k40.New(), dgemm.New(256)) }
func BenchmarkInjectedBatchLavaMD(b *testing.B) { benchInjectedBatch(b, k40.New(), lavamd.New(5)) }
func BenchmarkInjectedBatchHotSpot(b *testing.B) {
	benchInjectedBatch(b, k40.New(), hotspot.New(64, 80))
}
func BenchmarkInjectedBatchCLAMR(b *testing.B) { benchInjectedBatch(b, phi.New(), clamr.New(48, 60)) }

// releaseOutcome returns an outcome's report to the session pool, modeling
// the streaming engine's per-strike release.
func releaseOutcome(ses *injector.Session, out injector.Outcome) {
	ses.ReleaseReport(out.Report)
}
